//! Day-scale simulation: a whole waking day as one continuous run.
//!
//! The paper argues at the *battery-day* horizon — 52 pickups,
//! Deloitte session lengths, one stored Q-table per app reused across
//! sessions (§IV-B) — but a per-session comparison cannot see it. This
//! module executes a [`workload::DayPlan`] end to end on **one
//! physical device state**:
//!
//! ```text
//!  ┌ gap ┐┌─ session 1 ─┐┌ gap ┐┌─ session 2 ─┐     ┌ tail gap ┐
//!  │ idle ││ app A, real ││ idle ││ app B, real │ ... │   idle    │
//!  │ tick ││ Engine run  ││ tick ││ Engine run  │     │   tick    │
//!  └──────┘└─────────────┘└──────┘└─────────────┘     └───────────┘
//!     └────────── one Soc: thermal state carries through ──────────┘
//! ```
//!
//! * sessions run through the real [`Engine`] under the chosen
//!   governor,
//! * screen-off gaps keep ticking the SoC with idle (zero) demand at a
//!   coarse tick, so each pickup starts from a physically-warm device
//!   instead of the cold-boot state a per-session harness fakes,
//! * for the `next` governor, per-app Q-tables are fetched and stored
//!   through [`QTableStore`] exactly as §IV-B prescribes: the first
//!   pickup of an unseen app trains once on a dedicated training
//!   device (or warm-starts from a pre-seeded fleet table), every
//!   later pickup reuses the stored table.
//!
//! Everything in a [`DayReport`] is a pure function of the
//! [`DaySpec`] plus the store's initial contents — [`run_days`] fans
//! plans × governors out on the work-stealing
//! [`crate::sweep::parallel_map`] and is byte-identical for any worker
//! count, the same 1-vs-N guarantee the sweep and fleet engines give.

use std::collections::BTreeMap;

use governors::Governor;
use mpsoc::perf::FrameDemand;
use mpsoc::SocBatch;
use next_core::ppdw::ppdw;
use next_core::{NextAgent, QTableStore};
use qlearn::qtable::QTable;
use qlearn::{DenseQTable, QStore};
use workload::{idle_demand, DayPlan, Persona, SessionPlan, SessionSim};

use crate::batch::BatchLane;
use crate::engine::{Engine, RunOutcome};
use crate::metrics::{Battery, Summary, Trace};
use crate::platform::PlatformPreset;
use crate::sweep::{parallel_map, StandardEvaluator};
use crate::trace::{
    NullSink, SegmentKind, TickTrace, TickView, TraceMeta, TraceRecorder, TraceSink,
};
use crate::trainer::{TrainSpec, Trainer};

/// One fully-specified day simulation.
#[derive(Debug, Clone)]
pub struct DaySpec {
    /// The generated day to execute.
    pub plan: DayPlan,
    /// Governor name (see [`StandardEvaluator::GOVERNORS`]).
    pub governor: String,
    /// Platform preset the day runs on.
    pub preset: PlatformPreset,
    /// Tick length during screen-off gaps, seconds. The thermal network
    /// sub-steps internally, so a coarse gap tick is stable; 1 s keeps
    /// a 16 h day cheap while still resolving the cool-down curves.
    pub gap_tick_s: f64,
    /// Base training budget for first-use Q-table training, simulated
    /// seconds (games get twice the base, as in §V).
    pub train_budget_s: f64,
    /// Battery pack the drain is reported against.
    pub battery: Battery,
    /// When true, `next` lanes **keep learning during the day**: agents
    /// are warm-started from the stored table (§IV-C device-side hook,
    /// scaled exploration) and the updated per-app tables are written
    /// back to the lane's store when the day ends. When false (the
    /// default, and the behaviour of every pre-campaign artifact) the
    /// day runs greedy inference and never mutates the store beyond
    /// first-use training.
    pub train_online: bool,
}

impl DaySpec {
    /// A day of `plan` under `governor` on the paper's defaults: stock
    /// platform preset, 1 s gap ticks, §V training budget, Note 9 pack.
    #[must_use]
    pub fn new(plan: DayPlan, governor: &str) -> Self {
        DaySpec {
            plan,
            governor: governor.to_owned(),
            preset: PlatformPreset::default(),
            gap_tick_s: 1.0,
            train_budget_s: StandardEvaluator::BASE_TRAIN_BUDGET_S,
            battery: Battery::note9(),
            train_online: false,
        }
    }

    /// Runs on a different platform preset.
    #[must_use]
    pub fn with_preset(mut self, preset: PlatformPreset) -> Self {
        self.preset = preset;
        self
    }

    /// Overrides the base training budget.
    #[must_use]
    pub fn with_train_budget_s(mut self, budget_s: f64) -> Self {
        self.train_budget_s = budget_s;
        self
    }

    /// Enables online learning during the day (see
    /// [`DaySpec::train_online`]) — the campaign runner's federated
    /// local-round mode.
    #[must_use]
    pub fn with_train_online(mut self, train_online: bool) -> Self {
        self.train_online = train_online;
        self
    }

    /// The trace metadata describing this day — the regeneration
    /// recipe [`replay_day`] consumes. Everything in it pins the run:
    /// the plan is regenerated from `(persona, config, seed)` and the
    /// store contents from `(governor, train_budget_s, preset)`.
    ///
    /// # Panics
    ///
    /// Panics for an online-training day: the trace header does not
    /// carry `train_online`, so such a day could not be replayed from
    /// its metadata (campaign rounds are reproduced from the campaign
    /// checkpoint recipe instead).
    #[must_use]
    pub fn trace_meta(&self) -> TraceMeta {
        assert!(
            !self.train_online,
            "online-training days are not traceable: the trace header \
             cannot express train_online"
        );
        #[allow(clippy::cast_possible_truncation)]
        TraceMeta {
            platform: self.preset.name.clone(),
            governor: self.governor.clone(),
            persona: self.plan.persona.clone(),
            seed: self.plan.seed,
            plan: self.plan.config,
            gap_tick_s: self.gap_tick_s,
            train_budget_s: self.train_budget_s,
            battery: self.battery,
            tick_s: Engine::new().tick_s(),
            n_domains: self.preset.soc.platform.n_domains() as u8,
        }
    }
}

/// Outcome of one pickup's session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Pickup index within the day (0-based).
    pub pickup: usize,
    /// Application of the session.
    pub app: String,
    /// Simulated day time the session started, seconds.
    pub start_s: f64,
    /// Executed session length, seconds (the plan duration rounded to
    /// whole engine ticks).
    pub duration_s: f64,
    /// Run summary (power/FPS/thermals/energy).
    pub summary: Summary,
    /// PPDW (Eq. 1) of the session's mean operating point.
    pub ppdw: f64,
    /// Hot-spot temperature when the session began, °C — shows the
    /// warm-start the preceding gap left behind.
    pub start_temp_hot_c: f64,
}

/// Aggregates of one simulated day — the battery-day quantities the
/// paper's premise is about.
#[derive(Debug, Clone, PartialEq)]
pub struct DayReport {
    /// The day that ran (plan metadata: persona, seed, schedule).
    pub plan: DayPlan,
    /// Governor that ran the day.
    pub governor: String,
    /// Platform preset name.
    pub platform: String,
    /// Per-pickup session outcomes, in pickup order.
    pub sessions: Vec<SessionReport>,
    /// Executed screen-on time, seconds.
    pub screen_on_s: f64,
    /// Executed screen-off time, seconds.
    pub screen_off_s: f64,
    /// Energy consumed while the screen was on, joules.
    pub energy_screen_on_j: f64,
    /// Energy consumed during screen-off gaps, joules.
    pub energy_gap_j: f64,
    /// Session-length-weighted mean FPS over the day's screen-on time.
    pub avg_fps: f64,
    /// Screen-on mean power, watts.
    pub avg_power_w: f64,
    /// Peak hot-spot temperature over the whole day (sessions and
    /// gaps), °C.
    pub peak_temp_hot_c: f64,
    /// One-time Q-table trainings performed during the day (`next`
    /// only; 0 when every app was already in the store).
    pub trainings: u32,
    /// Battery drain over the day, percent of the pack, saturating at
    /// 100 (see [`Battery::drain_percent`]).
    pub battery_drain_pct: f64,
    /// Full charges the day consumed (unclamped; > 1 means the day
    /// needs a recharge).
    pub charges_used: f64,
}

impl DayReport {
    /// Total energy over the day, joules.
    #[must_use]
    pub fn energy_total_j(&self) -> f64 {
        self.energy_screen_on_j + self.energy_gap_j
    }

    /// Number of pickups the day executed.
    #[must_use]
    pub fn pickup_count(&self) -> usize {
        self.sessions.len()
    }
}

/// Builds a baseline governor by name (the `next` agent is constructed
/// per app from its stored table instead).
fn baseline_governor(name: &str) -> Box<dyn Governor> {
    // qlint::allow(PN01, reason = "run_day documents the panic; governor names come from validated specs")
    governors::by_name(name).unwrap_or_else(|| panic!("unknown governor '{name}'"))
}

/// Fetches the app's table from the store, training once on first use
/// (§IV-B). Returns the table and whether a training actually ran.
///
/// Training always runs on the dense backend (the [`Trainer`]'s native
/// layout) and converts into the store's backend afterwards; campaign
/// stores are pre-seeded with every app's overlay, so the train branch
/// never fires there.
fn fetch_or_train<B: QStore>(
    store: &mut QTableStore<B>,
    app: &str,
    spec: &DaySpec,
) -> (QTable<B>, bool) {
    if let Some(table) = store.load(app) {
        return (table, false);
    }
    let budget = StandardEvaluator::train_budget_for(spec.train_budget_s, app);
    let train_spec = TrainSpec::new(
        app,
        spec.preset.next.clone(),
        StandardEvaluator::TRAIN_SEED,
        budget,
    )
    .with_soc(spec.preset.soc.clone());
    let out = Trainer::new().train(train_spec);
    let table = out.agent.into_table().to_backend::<B>();
    store
        .save(app, &table)
        // qlint::allow(PN01, reason = "a store without a directory performs no I/O")
        .expect("in-memory day store cannot fail");
    (table, true)
}

/// Ticks every lane of the batch through a screen-off gap with idle
/// demand, writing `(energy_j, peak_temp_hot_c, elapsed_s)` into
/// `acc[lane]`. The display is off: no frames, no governor — the
/// kernel's util tracking drops every domain to its floor within a few
/// ticks.
fn run_gap_lanes<S: TraceSink>(
    batch: &mut SocBatch,
    gap_s: f64,
    tick_s: f64,
    idle: &[FrameDemand],
    acc: &mut [(f64, f64, f64)],
    sinks: &mut [S],
) {
    for a in acc.iter_mut() {
        *a = (0.0, f64::MIN, 0.0);
    }
    let mut left = gap_s;
    while left > 1e-9 {
        let dt = tick_s.min(left);
        batch.tick(dt, idle);
        for (l, a) in acc.iter_mut().enumerate() {
            let state = batch.state(l);
            a.0 += batch.tick_output(l).power_w * dt;
            a.1 = a.1.max(state.temp_hot_c);
            a.2 += dt;
            if sinks[l].enabled() {
                sinks[l].record(&TickView {
                    state: &state,
                    dt_s: dt,
                    decision: None,
                });
            }
        }
        left -= dt;
    }
}

/// Runs one whole day: sessions through the engine, gaps through the
/// idle ticker, Q-tables through `store` (pre-seed it to model a
/// device that already has fleet tables; leave it empty for the
/// train-once-on-first-use story).
///
/// Deterministic: the report is a pure function of `(spec, store
/// contents)`.
///
/// # Panics
///
/// Panics on an unknown governor, an unknown app in the plan, or a
/// non-positive gap tick.
#[must_use]
pub fn run_day<B: QStore>(spec: &DaySpec, store: &mut QTableStore<B>) -> DayReport {
    run_day_lanes(std::slice::from_ref(spec), &mut [store])
        .pop()
        // qlint::allow(PN01, reason = "run_day_lanes returns exactly one report per spec")
        .expect("one lane, one report")
}

/// [`run_day`] with per-tick trace recording: returns the report plus
/// the finished [`TickTrace`] (metadata from [`DaySpec::trace_meta`],
/// one record per engine/gap tick).
#[must_use]
pub fn run_day_traced<B: QStore>(
    spec: &DaySpec,
    store: &mut QTableStore<B>,
) -> (DayReport, TickTrace) {
    let mut sinks = vec![TraceRecorder::new(spec.trace_meta())];
    let report = run_day_lanes_traced(std::slice::from_ref(spec), &mut [store], &mut sinks)
        .pop()
        // qlint::allow(PN01, reason = "run_day_lanes_traced returns exactly one report per spec")
        .expect("one lane, one report");
    // qlint::allow(PN01, reason = "sinks was built with exactly one recorder above")
    let trace = sinks.pop().expect("one lane, one sink").finish();
    (report, trace)
}

/// Runs one day for several governors **in lockstep on the batched
/// kernel**: every lane replays the identical plan (same pickups, same
/// session seeds) on its own device column, so governors are compared
/// on the same day at a fraction of the lane-sequential cost. Lane `l`
/// uses `specs[l].governor` and `stores[l]`.
///
/// Per lane, results are bit-identical to [`run_day`] — batching is
/// unobservable in the reports.
///
/// # Panics
///
/// Panics on an unknown governor, an unknown app, a non-positive gap
/// tick, mismatched `specs`/`stores` lengths, or specs that do not
/// share the same plan, preset, gap tick, training budget, and battery.
#[must_use]
pub fn run_day_lanes<B: QStore>(
    specs: &[DaySpec],
    stores: &mut [&mut QTableStore<B>],
) -> Vec<DayReport> {
    let mut sinks = vec![NullSink; specs.len()];
    run_day_lanes_traced(specs, stores, &mut sinks)
}

/// [`run_day_lanes`] with one [`TraceSink`] per lane observing every
/// tick of that lane's day (gap ticks included, with no decision).
/// Segment boundaries are announced through
/// [`TraceSink::begin_segment`]: the gap before pickup `i` and the
/// session of pickup `i` both carry index `i`; the tail gap carries the
/// pickup count.
///
/// # Panics
///
/// As [`run_day_lanes`], plus mismatched `sinks` length.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_day_lanes_traced<B: QStore, S: TraceSink>(
    specs: &[DaySpec],
    stores: &mut [&mut QTableStore<B>],
    sinks: &mut [S],
) -> Vec<DayReport> {
    assert!(!specs.is_empty(), "day batch needs at least one lane");
    assert_eq!(specs.len(), stores.len(), "one store per lane");
    assert_eq!(specs.len(), sinks.len(), "one sink per lane");
    let first = &specs[0];
    assert!(
        first.gap_tick_s > 0.0 && first.gap_tick_s.is_finite(),
        "gap tick must be positive"
    );
    for spec in specs {
        assert!(
            StandardEvaluator::GOVERNORS.contains(&spec.governor.as_str()),
            "unknown governor '{}'",
            spec.governor
        );
        assert!(
            spec.plan == first.plan
                && spec.preset.name == first.preset.name
                && spec.gap_tick_s == first.gap_tick_s
                && spec.train_budget_s == first.train_budget_s
                && spec.battery == first.battery
                && spec.train_online == first.train_online,
            "day lanes must share the plan and device; only the governor may differ"
        );
    }
    let n = specs.len();
    let engine = Engine::new();
    // qlint::allow(PN01, reason = "the spec's preset was validated when it was built")
    let mut batch = SocBatch::replicate(&first.preset.soc, n).expect("preset SoC config is valid");
    let is_next: Vec<bool> = specs.iter().map(|s| s.governor == "next").collect();
    let mut baselines: Vec<Option<Box<dyn Governor>>> = specs
        .iter()
        .zip(&is_next)
        .map(|(s, &nx)| (!nx).then(|| baseline_governor(&s.governor)))
        .collect();
    // One persistent inference agent per app per lane for the whole day
    // (the §IV-B deployment shape): the table is fetched from the store
    // and the dense arena allocated once per distinct app, not once per
    // pickup — a 52-pickup day would otherwise clone tens of MB of
    // Q-table 52 times.
    let mut agents: Vec<BTreeMap<String, NextAgent<B>>> = (0..n).map(|_| BTreeMap::new()).collect();

    let mut session_reports: Vec<Vec<SessionReport>> = (0..n)
        .map(|_| Vec::with_capacity(first.plan.pickups.len()))
        .collect();
    let mut outcomes: Vec<RunOutcome> = (0..n)
        .map(|_| RunOutcome {
            trace: Trace::new(),
            presented_frames: 0,
            repeated_vsyncs: 0,
        })
        .collect();
    let mut screen_on_s = vec![0.0f64; n];
    let mut screen_off_s = vec![0.0f64; n];
    let mut energy_screen_on_j = vec![0.0f64; n];
    let mut energy_gap_j = vec![0.0f64; n];
    let mut peak_temp_hot_c = vec![f64::MIN; n];
    let mut trainings = vec![0u32; n];
    let mut fps_weighted = vec![0.0f64; n];
    let idle = vec![idle_demand(); n];
    let mut gap_acc = vec![(0.0f64, 0.0f64, 0.0f64); n];

    for (i, pickup) in first.plan.pickups.iter().enumerate() {
        // Screen-off before the pickup: the device keeps cooling (or
        // holding its warmth) between sessions.
        for sink in sinks.iter_mut() {
            sink.begin_segment(SegmentKind::Gap, i);
        }
        run_gap_lanes(
            &mut batch,
            pickup.gap_before_s,
            first.gap_tick_s,
            &idle,
            &mut gap_acc,
            sinks,
        );
        let mut start_temp_hot_c = vec![0.0f64; n];
        for l in 0..n {
            energy_gap_j[l] += gap_acc[l].0;
            screen_off_s[l] += gap_acc[l].2;
            peak_temp_hot_c[l] = peak_temp_hot_c[l].max(gap_acc[l].1);
            start_temp_hot_c[l] = batch.state(l).temp_hot_c;
        }

        // Make sure every `next` lane has the app's inference agent
        // (training once through its own store on first use).
        for (l, spec) in specs.iter().enumerate() {
            if is_next[l] && !agents[l].contains_key(&pickup.app) {
                let (table, trained) = fetch_or_train(stores[l], &pickup.app, spec);
                trainings[l] += u32::from(trained);
                let agent = if spec.train_online {
                    // Federated local round: keep learning from the
                    // stored (fleet-merged) table with the §IV-C
                    // warm-start exploration scale.
                    NextAgent::warm_start(spec.preset.next.clone(), table)
                } else {
                    NextAgent::with_table(spec.preset.next.clone(), table, false)
                };
                agents[l].insert(pickup.app.clone(), agent);
            }
        }

        // The pickup: a real lockstep engine run on the warm devices —
        // every lane replays the identical session seed.
        let duration_s = engine.ticks_for(pickup.duration_s) as f64 * engine.tick_s();
        let mut sessions: Vec<SessionSim> = (0..n)
            .map(|_| {
                SessionSim::new(
                    SessionPlan::single(&pickup.app, pickup.duration_s),
                    pickup.session_seed,
                )
            })
            .collect();
        let mut lanes: Vec<BatchLane<'_>> = Vec::with_capacity(n);
        for (((baseline, agent_map), session), &nx) in baselines
            .iter_mut()
            .zip(agents.iter_mut())
            .zip(sessions.iter_mut())
            .zip(&is_next)
        {
            let governor: &mut dyn Governor = if nx {
                // qlint::allow(PN01, reason = "the loop above inserted an agent for every planned app")
                let agent = agent_map.get_mut(&pickup.app).expect("agent ensured above");
                agent.start_session();
                agent
            } else {
                // qlint::allow(PN01, reason = "non-next lanes always carry a baseline governor")
                let governor = baseline.as_mut().expect("baseline governor");
                governor.reset();
                governor.as_mut()
            };
            lanes.push(BatchLane { governor, session });
        }
        for sink in sinks.iter_mut() {
            sink.begin_segment(SegmentKind::Session, i);
        }
        engine.run_lanes_traced(
            &mut batch,
            &mut lanes,
            pickup.duration_s,
            &mut outcomes,
            sinks,
        );

        for (l, spec) in specs.iter().enumerate() {
            let summary = outcomes[l].trace.summary();
            energy_screen_on_j[l] += summary.energy_j;
            screen_on_s[l] += duration_s;
            peak_temp_hot_c[l] = peak_temp_hot_c[l].max(summary.peak_temp_hot_c);
            fps_weighted[l] += summary.avg_fps * duration_s;
            let next = &spec.preset.next;
            session_reports[l].push(SessionReport {
                pickup: i,
                app: pickup.app.clone(),
                start_s: pickup.start_s,
                duration_s,
                ppdw: ppdw(
                    summary.avg_fps.max(next.bounds.fps_least),
                    summary.avg_power_w,
                    summary.avg_temp_hot_c,
                    next.ambient_c,
                ),
                start_temp_hot_c: start_temp_hot_c[l],
                summary,
            });
        }
    }
    // Tail of the day after the last session.
    for sink in sinks.iter_mut() {
        sink.begin_segment(SegmentKind::Gap, first.plan.pickups.len());
    }
    run_gap_lanes(
        &mut batch,
        first.plan.tail_gap_s,
        first.gap_tick_s,
        &idle,
        &mut gap_acc,
        sinks,
    );
    for l in 0..n {
        energy_gap_j[l] += gap_acc[l].0;
        screen_off_s[l] += gap_acc[l].2;
        peak_temp_hot_c[l] = peak_temp_hot_c[l].max(gap_acc[l].1);
    }

    // Online-training lanes persist what the day taught: the updated
    // per-app tables go back into the lane's store (BTreeMap order, so
    // the store contents are deterministic).
    for (l, spec) in specs.iter().enumerate() {
        if spec.train_online {
            for (app, agent) in std::mem::take(&mut agents[l]) {
                stores[l]
                    .save(&app, &agent.into_table())
                    // qlint::allow(PN01, reason = "a store without a directory performs no I/O")
                    .expect("in-memory day store cannot fail");
            }
        }
    }

    specs
        .iter()
        .enumerate()
        .map(|(l, spec)| {
            let avg_power_w = if screen_on_s[l] > 0.0 {
                energy_screen_on_j[l] / screen_on_s[l]
            } else {
                0.0
            };
            let energy_total = energy_screen_on_j[l] + energy_gap_j[l];
            DayReport {
                plan: spec.plan.clone(),
                governor: spec.governor.clone(),
                platform: spec.preset.name.clone(),
                sessions: std::mem::take(&mut session_reports[l]),
                screen_on_s: screen_on_s[l],
                screen_off_s: screen_off_s[l],
                energy_screen_on_j: energy_screen_on_j[l],
                energy_gap_j: energy_gap_j[l],
                avg_fps: if screen_on_s[l] > 0.0 {
                    fps_weighted[l] / screen_on_s[l]
                } else {
                    0.0
                },
                avg_power_w,
                peak_temp_hot_c: peak_temp_hot_c[l],
                trainings: trainings[l],
                battery_drain_pct: spec.battery.drain_percent(energy_total),
                charges_used: spec.battery.charges_used(energy_total),
            }
        })
        .collect()
}

/// Fans `plans × governors` out on the work-stealing parallel runner:
/// one day cell per (plan, governor), every cell replaying the
/// identical plan so governors are compared on the same day.
///
/// `next` cells share Q-tables trained **once per distinct app** up
/// front (themselves in parallel), modelling devices whose store
/// already holds the per-app tables — so a day's `trainings` count is
/// 0 here; use [`run_day`] with an empty store for the first-boot
/// train-on-first-use story.
///
/// Deterministic: the returned reports — every float — are identical
/// for any `workers` value.
///
/// # Panics
///
/// Panics on unknown governor or app names.
#[must_use]
pub fn run_days(
    plans: &[DayPlan],
    governors: &[String],
    preset: &PlatformPreset,
    gap_tick_s: f64,
    train_budget_s: f64,
    workers: usize,
) -> Vec<DayReport> {
    let store_seed = seeded_tables(plans, governors, preset, train_budget_s, workers);
    // One batched cell per plan: all governors ride the same
    // [`SocBatch`] in lockstep, one lane each.
    let cells: Vec<usize> = (0..plans.len()).collect();
    let per_plan = parallel_map(&cells, workers, |&pi| {
        let (specs, mut lane_stores) = cell_setup(
            &plans[pi],
            governors,
            preset,
            gap_tick_s,
            train_budget_s,
            &store_seed,
        );
        let mut store_refs: Vec<&mut QTableStore> = lane_stores.iter_mut().collect();
        run_day_lanes(&specs, &mut store_refs)
    });
    per_plan.into_iter().flatten().collect()
}

/// [`run_days`] with per-cell trace recording: every `(plan, governor)`
/// cell returns its report paired with the lane's [`TickTrace`].
/// Recorders live inside the parallel cells, so the traces — like the
/// reports — are byte-identical for any `workers` value.
///
/// # Panics
///
/// Panics on unknown governor or app names.
#[must_use]
pub fn run_days_traced(
    plans: &[DayPlan],
    governors: &[String],
    preset: &PlatformPreset,
    gap_tick_s: f64,
    train_budget_s: f64,
    workers: usize,
) -> Vec<(DayReport, TickTrace)> {
    let store_seed = seeded_tables(plans, governors, preset, train_budget_s, workers);
    let cells: Vec<usize> = (0..plans.len()).collect();
    let per_plan = parallel_map(&cells, workers, |&pi| {
        let (specs, mut lane_stores) = cell_setup(
            &plans[pi],
            governors,
            preset,
            gap_tick_s,
            train_budget_s,
            &store_seed,
        );
        let mut store_refs: Vec<&mut QTableStore> = lane_stores.iter_mut().collect();
        let mut sinks: Vec<TraceRecorder> = specs
            .iter()
            .map(|spec| TraceRecorder::new(spec.trace_meta()))
            .collect();
        let reports = run_day_lanes_traced(&specs, &mut store_refs, &mut sinks);
        reports
            .into_iter()
            .zip(sinks.into_iter().map(TraceRecorder::finish))
            .collect::<Vec<_>>()
    });
    per_plan.into_iter().flatten().collect()
}

/// Trains each distinct app of `plans` once (in parallel) when the
/// grid includes the `next` governor — the store-seeding phase shared
/// by [`run_days`], [`run_days_traced`] and [`replay_day`].
fn seeded_tables(
    plans: &[DayPlan],
    governors: &[String],
    preset: &PlatformPreset,
    train_budget_s: f64,
    workers: usize,
) -> BTreeMap<String, DenseQTable> {
    let mut train_apps: Vec<String> = Vec::new();
    if governors.iter().any(|g| g == "next") {
        for plan in plans {
            train_apps.extend(plan.distinct_apps());
        }
        train_apps.sort();
        train_apps.dedup();
    }
    let outcomes = StandardEvaluator::train_for_apps(&train_apps, train_budget_s, workers, preset);
    train_apps
        .into_iter()
        .zip(outcomes.into_iter().map(|out| out.agent.into_table()))
        .collect()
}

/// Builds one plan-cell's per-governor specs and pre-seeded stores.
fn cell_setup(
    plan: &DayPlan,
    governors: &[String],
    preset: &PlatformPreset,
    gap_tick_s: f64,
    train_budget_s: f64,
    store_seed: &BTreeMap<String, DenseQTable>,
) -> (Vec<DaySpec>, Vec<QTableStore>) {
    let specs: Vec<DaySpec> = governors
        .iter()
        .map(|governor| DaySpec {
            plan: plan.clone(),
            governor: governor.clone(),
            preset: preset.clone(),
            gap_tick_s,
            train_budget_s,
            battery: Battery::note9(),
            train_online: false,
        })
        .collect();
    let lane_stores: Vec<QTableStore> = governors
        .iter()
        .map(|governor| {
            let mut store = QTableStore::in_memory();
            if governor == "next" {
                for app in plan.distinct_apps() {
                    store
                        .save(&app, &store_seed[&app])
                        // qlint::allow(PN01, reason = "a store without a directory performs no I/O")
                        .expect("in-memory save cannot fail");
                }
            }
            store
        })
        .collect();
    (specs, lane_stores)
}

/// Re-executes a recorded day from its [`TraceMeta`] alone and returns
/// the regenerated report and trace. Because every stage is
/// deterministic — plan generation from `(persona, config, seed)`,
/// Q-table training from `(governor, budget, preset)`, and the tick
/// loop itself — the regenerated trace is byte-identical to the
/// original recording; `next-sim replay` asserts exactly that.
///
/// # Errors
///
/// Returns a message for unknown platform/persona/governor names, an
/// infeasible plan configuration, a foreign engine tick, or a domain
/// count that does not match the named platform.
pub fn replay_day(meta: &TraceMeta, workers: usize) -> Result<(DayReport, TickTrace), String> {
    let preset = PlatformPreset::by_name(&meta.platform)
        .ok_or_else(|| format!("unknown platform '{}'", meta.platform))?;
    let persona = Persona::by_name(&meta.persona)
        .ok_or_else(|| format!("unknown persona '{}'", meta.persona))?;
    if !StandardEvaluator::GOVERNORS.contains(&meta.governor.as_str()) {
        return Err(format!("unknown governor '{}'", meta.governor));
    }
    if meta.tick_s != Engine::new().tick_s() {
        return Err(format!(
            "trace was recorded at a {} s base tick; this engine runs {} s",
            meta.tick_s,
            Engine::new().tick_s()
        ));
    }
    if usize::from(meta.n_domains) != preset.soc.platform.n_domains() {
        return Err(format!(
            "trace records {} domains but platform '{}' has {}",
            meta.n_domains,
            meta.platform,
            preset.soc.platform.n_domains()
        ));
    }
    if !(meta.gap_tick_s > 0.0 && meta.gap_tick_s.is_finite()) {
        return Err(format!("invalid gap tick {}", meta.gap_tick_s));
    }
    meta.plan.validate()?;
    let plan = DayPlan::generate(&persona, &meta.plan, meta.seed);
    let governors = vec![meta.governor.clone()];
    let store_seed = seeded_tables(
        std::slice::from_ref(&plan),
        &governors,
        &preset,
        meta.train_budget_s,
        workers,
    );
    let (mut specs, mut stores) = cell_setup(
        &plan,
        &governors,
        &preset,
        meta.gap_tick_s,
        meta.train_budget_s,
        &store_seed,
    );
    // qlint::allow(PN01, reason = "built above from a one-governor slice")
    let mut spec = specs.pop().expect("one governor, one spec");
    spec.battery = meta.battery;
    // qlint::allow(PN01, reason = "built above from a one-governor slice")
    let mut store = stores.pop().expect("one governor, one store");
    Ok(run_day_traced(&spec, &mut store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{DayPlanConfig, Persona};

    /// Default-backend store — the tests exercise the dense path; the
    /// overlay backend is covered by the campaign and store tests.
    fn dense_store() -> QTableStore {
        QTableStore::in_memory()
    }

    fn tiny_plan(seed: u64) -> DayPlan {
        let cfg = DayPlanConfig {
            pickups: 4,
            day_length_s: 400.0,
            session_scale: 0.1,
            min_session_s: 15.0,
        };
        DayPlan::generate(&Persona::socialite(), &cfg, seed)
    }

    fn tiny_spec(governor: &str) -> DaySpec {
        DaySpec::new(tiny_plan(7), governor).with_train_budget_s(30.0)
    }

    #[test]
    fn day_accounts_time_and_energy() {
        let spec = tiny_spec("schedutil");
        let report = run_day(&spec, &mut dense_store());
        assert_eq!(report.pickup_count(), 4);
        // Executed time matches the plan up to the per-session tick
        // rounding (≤ half a tick per session).
        let total = report.screen_on_s + report.screen_off_s;
        assert!(
            (total - spec.plan.day_length_s).abs() < 4.0 * 0.0125 + 1e-6,
            "day lost time: {total} vs {}",
            spec.plan.day_length_s
        );
        assert!(report.energy_screen_on_j > 0.0);
        assert!(report.energy_gap_j > 0.0, "idle gaps still burn power");
        assert!(report.battery_drain_pct > 0.0);
        assert!(report.charges_used > 0.0);
        assert_eq!(report.trainings, 0, "baselines never train");
        assert!(report.avg_fps > 0.0);
    }

    #[test]
    fn next_trains_once_per_app_and_reuses_the_store() {
        let spec = tiny_spec("next");
        let mut store = dense_store();
        let report = run_day(&spec, &mut store);
        let distinct = spec.plan.distinct_apps().len() as u32;
        assert_eq!(
            report.trainings, distinct,
            "first boot trains each app exactly once"
        );
        // A second identical day on the now-populated store trains
        // nothing and reproduces the day bit for bit.
        let again = run_day(&spec, &mut store);
        assert_eq!(again.trainings, 0);
        assert_eq!(again.sessions, report.sessions);
    }

    #[test]
    fn train_online_updates_the_store_deterministically() {
        let base_spec = tiny_spec("next");
        let mut seed_store = QTableStore::in_memory();
        // Populate the store once (train-on-first-use), then snapshot.
        let _ = run_day(&base_spec, &mut seed_store);
        let apps = base_spec.plan.distinct_apps();
        let before: Vec<String> = apps
            .iter()
            .map(|a| seed_store.load(a).expect("seeded").encode())
            .collect();

        // An inference day leaves the store untouched.
        let mut store = clone_store(&mut seed_store, &apps);
        let inference = run_day(&base_spec, &mut store);
        for (a, b) in apps.iter().zip(&before) {
            assert_eq!(&store.load(a).expect("kept").encode(), b);
        }

        // An online-training day writes updated tables back…
        let online_spec = base_spec.clone().with_train_online(true);
        let mut store1 = clone_store(&mut seed_store, &apps);
        let online = run_day(&online_spec, &mut store1);
        let changed = apps
            .iter()
            .zip(&before)
            .any(|(a, b)| &store1.load(a).expect("kept").encode() != b);
        assert!(changed, "online day must update at least one table");
        assert_eq!(online.trainings, 0, "warm start is not a training");
        assert_eq!(online.pickup_count(), inference.pickup_count());

        // …and is itself deterministic: same spec + store, same bytes.
        let mut store2 = clone_store(&mut seed_store, &apps);
        let online2 = run_day(&online_spec, &mut store2);
        assert_eq!(online2.sessions, online.sessions);
        for a in &apps {
            assert_eq!(
                store1.load(a).expect("kept").encode(),
                store2.load(a).expect("kept").encode()
            );
        }
    }

    fn clone_store(from: &mut QTableStore, apps: &[String]) -> QTableStore {
        let mut out = QTableStore::in_memory();
        for a in apps {
            out.save(a, &from.load(a).expect("app seeded"))
                .expect("in-memory save");
        }
        out
    }

    #[test]
    fn pickups_start_warm_after_busy_gaps() {
        let report = run_day(&tiny_spec("schedutil"), &mut dense_store());
        // Every pickup after the first starts above ambient: the gap
        // cooled the device but never back to cold-boot state.
        let ambient = mpsoc::DEFAULT_AMBIENT_C;
        for s in &report.sessions[1..] {
            assert!(
                s.start_temp_hot_c > ambient,
                "pickup {} started cold: {:.2} °C",
                s.pickup,
                s.start_temp_hot_c
            );
        }
    }

    #[test]
    fn run_days_is_worker_count_invariant() {
        let plans = vec![tiny_plan(7), tiny_plan(8)];
        let governors = vec!["schedutil".to_owned(), "next".to_owned()];
        let preset = PlatformPreset::default();
        let one = run_days(&plans, &governors, &preset, 1.0, 30.0, 1);
        let many = run_days(&plans, &governors, &preset, 1.0, 30.0, 4);
        assert_eq!(one, many, "day reports must not depend on parallelism");
        assert_eq!(one.len(), 4);
    }

    #[test]
    fn governors_differ_over_the_same_day() {
        let plans = vec![tiny_plan(7)];
        let governors = vec!["next".to_owned(), "schedutil".to_owned()];
        let reports = run_days(&plans, &governors, &PlatformPreset::default(), 1.0, 30.0, 2);
        let next = &reports[0];
        let sched = &reports[1];
        assert_eq!(next.governor, "next");
        assert_eq!(sched.governor, "schedutil");
        assert!(
            (next.energy_total_j() - sched.energy_total_j()).abs() > 1e-9,
            "governors must produce a battery-day delta"
        );
        // Both replayed the identical plan.
        assert_eq!(next.plan, sched.plan);
    }

    #[test]
    #[should_panic(expected = "unknown governor")]
    fn unknown_governor_rejected() {
        let _ = run_day(&tiny_spec("warpdrive"), &mut dense_store());
    }
}
