//! The closed-loop simulation engine.
//!
//! One run advances the platform in 25 ms base ticks (the paper's frame
//! sampling period). Each tick:
//!
//! 1. the session produces the user-driven [`mpsoc::perf::FrameDemand`],
//! 2. the SoC executes it (`Soc::tick`),
//! 3. the governor's high-rate `observe` hook sees the new state (this
//!    is where Next fills its frame window),
//! 4. when the governor's control period has elapsed, `control` runs
//!    and actuates the DVFS caps.

use governors::Governor;
use mpsoc::soc::Soc;
use workload::SessionSim;

use crate::metrics::{Sample, Trace};
use crate::trace::{NullSink, TickView, TraceSink};

/// The simulation engine (base tick configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Engine {
    tick_s: f64,
}

/// Result of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The full 25 ms-resolution trace.
    pub trace: Trace,
    /// Total presented frames.
    pub presented_frames: u64,
    /// Total repeated (dropped) VSyncs.
    pub repeated_vsyncs: u64,
}

impl Engine {
    /// Engine with the paper's 25 ms base tick.
    #[must_use]
    pub fn new() -> Self {
        Engine { tick_s: 0.025 }
    }

    /// Engine with a custom base tick.
    ///
    /// # Panics
    ///
    /// Panics unless `tick_s` is positive and finite.
    #[must_use]
    pub fn with_tick(tick_s: f64) -> Self {
        assert!(tick_s > 0.0 && tick_s.is_finite(), "tick must be positive");
        Engine { tick_s }
    }

    /// Base tick in seconds.
    #[must_use]
    pub fn tick_s(&self) -> f64 {
        self.tick_s
    }

    /// Number of base ticks a run of `duration_s` executes — the exact
    /// count [`Engine::run`] uses (perf accounting reads this instead
    /// of re-deriving it).
    #[must_use]
    pub fn ticks_for(&self, duration_s: f64) -> u64 {
        let ticks = (duration_s / self.tick_s).round().max(0.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            ticks as u64
        }
    }

    /// Base ticks between control invocations for a governor period —
    /// the exact cadence [`Engine::run`] uses (at least 1).
    #[must_use]
    pub fn control_every_ticks(&self, period_s: f64) -> u64 {
        let every = (period_s / self.tick_s).round().max(1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            every as u64
        }
    }

    /// Runs `session` on `soc` under `governor` for `duration_s`
    /// simulated seconds (or until the session plan ends, whichever is
    /// later — pass the plan duration to stop with it).
    pub fn run(
        &self,
        soc: &mut Soc,
        governor: &mut dyn Governor,
        session: &mut SessionSim,
        duration_s: f64,
    ) -> RunOutcome {
        let mut outcome = RunOutcome {
            trace: Trace::new(),
            presented_frames: 0,
            repeated_vsyncs: 0,
        };
        self.run_into(soc, governor, session, duration_s, &mut outcome);
        outcome
    }

    /// Like [`Engine::run`], but writes into a caller-owned
    /// [`RunOutcome`], reusing its trace allocation. Training loops and
    /// the perf harness run many back-to-back sessions; recycling the
    /// multi-thousand-sample trace buffer keeps those loops off the
    /// allocator.
    ///
    /// The outcome is fully overwritten — any previous contents are
    /// discarded.
    pub fn run_into(
        &self,
        soc: &mut Soc,
        governor: &mut dyn Governor,
        session: &mut SessionSim,
        duration_s: f64,
        outcome: &mut RunOutcome,
    ) {
        self.run_into_traced(soc, governor, session, duration_s, outcome, &mut NullSink);
    }

    /// Like [`Engine::run_into`], with a [`TraceSink`] observing every
    /// tick. The sink is generic, so with the zero-sized [`NullSink`]
    /// (which is what `run_into` passes) the recording branches fold
    /// away and the tick loop is exactly the untraced one.
    pub fn run_into_traced<S: TraceSink>(
        &self,
        soc: &mut Soc,
        governor: &mut dyn Governor,
        session: &mut SessionSim,
        duration_s: f64,
        outcome: &mut RunOutcome,
        sink: &mut S,
    ) {
        outcome.trace.clear();
        outcome.presented_frames = 0;
        outcome.repeated_vsyncs = 0;
        // Hand the governor the device's domain registry before the
        // run: per-domain governors (Int. QoS PM, Next) resolve their
        // domain references against the platform here.
        governor.bind(soc.platform());
        // Hoist everything that is loop-invariant out of the 25 ms tick
        // loop: tick count, control cadence, and the trace reservation.
        let ticks = self.ticks_for(duration_s);
        let control_every = self.control_every_ticks(governor.period_s());
        #[allow(clippy::cast_possible_truncation)]
        outcome.trace.reserve(ticks as usize);

        let dt = self.tick_s;
        let mut presented = 0u64;
        let mut repeated = 0u64;
        let mut until_control = control_every;
        for _ in 0..ticks {
            let demand = session.advance(dt);
            let out = soc.tick(dt, &demand);
            presented += u64::from(out.vsync.presented);
            repeated += u64::from(out.vsync.repeated);
            let state = soc.state();
            governor.observe(&state);
            until_control -= 1;
            let mut controlled = false;
            if until_control == 0 {
                governor.control(&state, soc.dvfs_mut());
                until_control = control_every;
                controlled = true;
            }
            if sink.enabled() {
                sink.record(&TickView {
                    state: &state,
                    dt_s: dt,
                    decision: if controlled {
                        governor.last_decision()
                    } else {
                        None
                    },
                });
            }
            outcome.trace.push(Sample {
                time_s: state.time_s,
                fps: out.fps,
                power_w: out.power_w,
                temp_hot_c: state.temp_hot_c,
                temp_device_c: state.temp_device_c,
                freq_khz: state.freq_khz,
            });
        }
        outcome.presented_frames = presented;
        outcome.repeated_vsyncs = repeated;
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::Schedutil;
    use mpsoc::soc::SocConfig;
    use workload::SessionPlan;

    #[test]
    fn run_produces_full_trace() {
        let engine = Engine::new();
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = Schedutil::new();
        let mut session = SessionSim::new(SessionPlan::single("facebook", 10.0), 42);
        let out = engine.run(&mut soc, &mut gov, &mut session, 10.0);
        assert_eq!(out.trace.len(), 400, "10 s at 25 ms ticks");
        let s = out.trace.summary();
        assert!(s.avg_power_w > 0.5);
        assert!(out.presented_frames > 0);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let engine = Engine::new();
            let mut soc = Soc::new(SocConfig::exynos9810());
            let mut gov = Schedutil::new();
            let mut session = SessionSim::new(SessionPlan::paper_fig1(), 7);
            engine.run(&mut soc, &mut gov, &mut session, 30.0)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_into_reuses_outcome_and_matches_run() {
        let engine = Engine::new();
        let fresh = {
            let mut soc = Soc::new(SocConfig::exynos9810());
            let mut gov = Schedutil::new();
            let mut session = SessionSim::new(SessionPlan::single("facebook", 10.0), 42);
            engine.run(&mut soc, &mut gov, &mut session, 10.0)
        };
        // Same run through run_into, into an outcome polluted by a
        // previous (different) run.
        let mut reused = {
            let mut soc = Soc::new(SocConfig::exynos9810());
            let mut gov = Schedutil::new();
            let mut session = SessionSim::new(SessionPlan::single("spotify", 5.0), 7);
            engine.run(&mut soc, &mut gov, &mut session, 5.0)
        };
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = Schedutil::new();
        let mut session = SessionSim::new(SessionPlan::single("facebook", 10.0), 42);
        engine.run_into(&mut soc, &mut gov, &mut session, 10.0, &mut reused);
        assert_eq!(reused, fresh, "reused outcome must be fully overwritten");
    }

    #[test]
    fn zero_duration_runs_empty() {
        let engine = Engine::new();
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = Schedutil::new();
        let mut session = SessionSim::new(SessionPlan::single("home", 5.0), 1);
        let out = engine.run(&mut soc, &mut gov, &mut session, 0.0);
        assert!(out.trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn bad_tick_panics() {
        let _ = Engine::with_tick(0.0);
    }
}
