//! The closed-loop simulation engine.
//!
//! One run advances the platform in 25 ms base ticks (the paper's frame
//! sampling period). Each tick:
//!
//! 1. the session produces the user-driven [`mpsoc::perf::FrameDemand`],
//! 2. the SoC executes it (`Soc::tick`),
//! 3. the governor's high-rate `observe` hook sees the new state (this
//!    is where Next fills its frame window),
//! 4. when the governor's control period has elapsed, `control` runs
//!    and actuates the DVFS caps.

use governors::Governor;
use mpsoc::soc::Soc;
use workload::SessionSim;

use crate::metrics::{Sample, Trace};

/// The simulation engine (base tick configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Engine {
    tick_s: f64,
}

/// Result of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The full 25 ms-resolution trace.
    pub trace: Trace,
    /// Total presented frames.
    pub presented_frames: u64,
    /// Total repeated (dropped) VSyncs.
    pub repeated_vsyncs: u64,
}

impl Engine {
    /// Engine with the paper's 25 ms base tick.
    #[must_use]
    pub fn new() -> Self {
        Engine { tick_s: 0.025 }
    }

    /// Engine with a custom base tick.
    ///
    /// # Panics
    ///
    /// Panics unless `tick_s` is positive and finite.
    #[must_use]
    pub fn with_tick(tick_s: f64) -> Self {
        assert!(tick_s > 0.0 && tick_s.is_finite(), "tick must be positive");
        Engine { tick_s }
    }

    /// Base tick in seconds.
    #[must_use]
    pub fn tick_s(&self) -> f64 {
        self.tick_s
    }

    /// Runs `session` on `soc` under `governor` for `duration_s`
    /// simulated seconds (or until the session plan ends, whichever is
    /// later — pass the plan duration to stop with it).
    pub fn run(
        &self,
        soc: &mut Soc,
        governor: &mut dyn Governor,
        session: &mut SessionSim,
        duration_s: f64,
    ) -> RunOutcome {
        let mut trace = Trace::new();
        let mut presented = 0u64;
        let mut repeated = 0u64;
        let ticks = (duration_s / self.tick_s).round().max(0.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let ticks = ticks as u64;
        let control_every = (governor.period_s() / self.tick_s).round().max(1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let control_every = control_every as u64;

        for t in 0..ticks {
            let demand = session.advance(self.tick_s);
            let out = soc.tick(self.tick_s, &demand);
            presented += u64::from(out.vsync.presented);
            repeated += u64::from(out.vsync.repeated);
            let state = soc.state();
            governor.observe(&state);
            if (t + 1) % control_every == 0 {
                governor.control(&state, soc.dvfs_mut());
            }
            trace.push(Sample {
                time_s: state.time_s,
                fps: out.fps,
                power_w: out.power_w,
                temp_big_c: state.temp_big_c,
                temp_device_c: state.temp_device_c,
                freq_khz: state.freq_khz,
            });
        }
        RunOutcome { trace, presented_frames: presented, repeated_vsyncs: repeated }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::Schedutil;
    use mpsoc::soc::SocConfig;
    use workload::SessionPlan;

    #[test]
    fn run_produces_full_trace() {
        let engine = Engine::new();
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = Schedutil::new();
        let mut session = SessionSim::new(SessionPlan::single("facebook", 10.0), 42);
        let out = engine.run(&mut soc, &mut gov, &mut session, 10.0);
        assert_eq!(out.trace.len(), 400, "10 s at 25 ms ticks");
        let s = out.trace.summary();
        assert!(s.avg_power_w > 0.5);
        assert!(out.presented_frames > 0);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let engine = Engine::new();
            let mut soc = Soc::new(SocConfig::exynos9810());
            let mut gov = Schedutil::new();
            let mut session = SessionSim::new(SessionPlan::paper_fig1(), 7);
            engine.run(&mut soc, &mut gov, &mut session, 30.0)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_duration_runs_empty() {
        let engine = Engine::new();
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut gov = Schedutil::new();
        let mut session = SessionSim::new(SessionPlan::single("home", 5.0), 1);
        let out = engine.run(&mut soc, &mut gov, &mut session, 0.0);
        assert!(out.trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn bad_tick_panics() {
        let _ = Engine::with_tick(0.0);
    }
}
