//! The paper's evaluation protocol (§V).
//!
//! "All results for Next were observed when it was fully trained on the
//! respective applications": the protocol first trains the agent on an
//! application (once — the table is then stored), switches it to greedy
//! inference, and only then measures sessions. Baselines are measured
//! on identical seeded sessions.

use governors::Governor;
use mpsoc::soc::{Soc, SocConfig};
use next_core::NextConfig;
use workload::{SessionPlan, SessionSim};

use crate::engine::{Engine, RunOutcome};
use crate::metrics::Summary;
use crate::trainer::{TrainSpec, Trainer};

pub use crate::trainer::TrainOutcome;

/// Trains a fresh Next agent on `app` until convergence or
/// `max_train_s` simulated seconds, whichever comes first.
///
/// Training runs as a sequence of long app sessions on a dedicated
/// simulated device, exactly like leaving the app open on the phone
/// while the agent explores (§IV-B reports ≈3 min 27 s on average at 30
/// FPS bins). Thin wrapper over [`Trainer`] with the seed protocol's
/// defaults (60 s episodes, stock Exynos 9810, cold start).
#[must_use]
pub fn train_next_for_app(
    app: &str,
    config: NextConfig,
    seed: u64,
    max_train_s: f64,
) -> TrainOutcome {
    Trainer::new().train(TrainSpec::new(app, config, seed, max_train_s))
}

/// Result of measuring one governor on one session plan.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Governor name.
    pub governor: String,
    /// Summary statistics of the run.
    pub summary: Summary,
    /// Full run data.
    pub outcome: RunOutcome,
}

/// Measures `governor` on `plan` with a fresh (cold) device, seeded
/// deterministically so different governors see identical user
/// behaviour. Runs on the paper's stock Exynos 9810; use
/// [`evaluate_governor_on`] for other platforms.
#[must_use]
pub fn evaluate_governor(governor: &mut dyn Governor, plan: &SessionPlan, seed: u64) -> EvalResult {
    evaluate_governor_on(governor, plan, seed, &SocConfig::exynos9810())
}

/// [`evaluate_governor`] on an explicit device configuration (any
/// platform preset or custom descriptor).
#[must_use]
pub fn evaluate_governor_on(
    governor: &mut dyn Governor,
    plan: &SessionPlan,
    seed: u64,
    soc_config: &SocConfig,
) -> EvalResult {
    let engine = Engine::new();
    let mut soc = Soc::new(soc_config.clone());
    let duration = plan.total_duration_s();
    let mut session = SessionSim::new(plan.clone(), seed);
    governor.reset();
    let outcome = engine.run(&mut soc, governor, &mut session, duration);
    EvalResult {
        governor: governor.name().to_owned(),
        summary: outcome.trace.summary(),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::Schedutil;

    #[test]
    fn training_spends_time_and_learns_states() {
        let out = train_next_for_app("facebook", NextConfig::paper(), 3, 120.0);
        assert!(out.training_time_s > 0.0);
        assert!(out.training_time_s <= 120.0 + 1e-9);
        assert!(!out.agent.table().is_empty());
        assert!(
            !out.agent.is_training(),
            "returned agent must be in inference mode"
        );
    }

    #[test]
    fn evaluation_is_reproducible_per_seed() {
        let mut a = Schedutil::new();
        let mut b = Schedutil::new();
        let plan = SessionPlan::single("spotify", 20.0);
        let ra = evaluate_governor(&mut a, &plan, 5);
        let rb = evaluate_governor(&mut b, &plan, 5);
        assert_eq!(ra.summary, rb.summary);
    }

    #[test]
    fn different_seeds_change_the_session() {
        let plan = SessionPlan::single("facebook", 20.0);
        let ra = evaluate_governor(&mut Schedutil::new(), &plan, 1);
        let rb = evaluate_governor(&mut Schedutil::new(), &plan, 2);
        assert_ne!(ra.summary, rb.summary);
    }
}
