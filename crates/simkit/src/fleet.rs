//! Fleet-scale federated training (§IV-C at production scale).
//!
//! The paper's deployment story: a manufacturer ships a fleet of
//! devices that train per-application Q-tables locally and federate
//! them through the cloud. This module simulates that story end to end
//! as **R federated rounds over D heterogeneous devices**:
//!
//! ```text
//!            ┌────────────── one federated round ──────────────┐
//!            │                                                 │
//!  fleet ────┤ downlink ─▶ device 0 (bin A, user u₀) ─ train ─┐│
//!  table     │ downlink ─▶ device 1 (bin B, user u₁) ─ train ─┤│
//!  (round    │      …                                         ├┼─▶ uplink
//!  r − 1)    │ downlink ─▶ device D−1 (bin …, user …) ─ train ┘│    │
//!            │                                                 │    ▼
//!            │        cloud: streaming visit-weighted merge ◀──┘
//!            │        held-out eval: PPDW / FPS / power on the
//!            │        merged table (seeds disjoint from training)
//!            └─────────────────────────────────────────────────┘
//! ```
//!
//! Devices are heterogeneous on two axes. Every device is assigned an
//! [`SocBin`] (ambient temperature and platform-power variation — the
//! silicon/thermal lottery of a real fleet), and fleets may mix
//! **platforms**: [`FleetConfig::platforms`] assigns each device a
//! platform preset round-robin, and because Q-tables of different
//! platforms are not interchangeable (different action counts and
//! state spaces), the cloud keeps one federated table *per platform* —
//! devices only ever merge with, and warm-start from, their own
//! platform group. Local training runs through
//! [`crate::trainer::Trainer`], executed across devices with the
//! work-stealing [`crate::sweep::parallel_map`]; the cloud merge
//! streams each group's tables through
//! `qlearn::federated::MergeAccumulator` in device order. Every
//! quantity in a [`FleetReport`] is a pure function of the
//! [`FleetConfig`] — identical for any worker count — so the
//! `next-sim fleet` JSON artifact is byte-identical across machines'
//! parallelism. Round timing is *modeled* (slowest device's simulated
//! training time plus the configurable up/down-link latencies of the
//! Fig. 6 communication-overhead measurement), never wall clock.

use mpsoc::soc::SocConfig;
use next_core::ppdw::ppdw;
use next_core::{NextAgent, NextConfig};
use qlearn::federated::MergeAccumulator;
use qlearn::{DenseQTable, DenseStore};
use workload::scenario::splitmix64;
use workload::{apps, SessionPlan};

use crate::experiment::evaluate_governor_on;
use crate::platform::PlatformPreset;
use crate::sweep::parallel_map;
use crate::trainer::{TrainOutcome, TrainSpec, Trainer};

/// Up-/down-link latency of one federated round — the configurable
/// generalisation of Fig. 6's measured ≤4 s round-trip overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Device → cloud table upload latency, seconds.
    pub uplink_s: f64,
    /// Cloud → device merged-table push latency, seconds.
    pub downlink_s: f64,
}

impl LinkModel {
    /// The paper's measured round trip: ≤4 s, split evenly.
    #[must_use]
    pub fn paper() -> Self {
        LinkModel {
            uplink_s: 2.0,
            downlink_s: 2.0,
        }
    }

    /// Total per-round communication overhead, seconds.
    ///
    /// This is the **legacy fixed-cost model** (payload size ignored):
    /// `simkit::fleet` keeps using it so the byte-frozen schema-v2/v3
    /// `fleet.json` fixtures stay identical. The campaign runner
    /// computes communication time from the *actual encoded delta
    /// bytes* instead — see [`LinkModel::round_trip_bytes_s`].
    #[must_use]
    pub fn round_trip_s(&self) -> f64 {
        self.uplink_s + self.downlink_s
    }

    /// Modeled device uplink throughput, bytes per second (~8 Mbit/s,
    /// a conservative mobile uplink).
    pub const UPLINK_BYTES_PER_S: f64 = 1_000_000.0;

    /// Modeled device downlink throughput, bytes per second
    /// (~32 Mbit/s; downlinks are typically several times faster).
    pub const DOWNLINK_BYTES_PER_S: f64 = 4_000_000.0;

    /// Time to upload a payload of `bytes`: the fixed uplink latency
    /// plus the transfer at [`LinkModel::UPLINK_BYTES_PER_S`].
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn uplink_time_s(&self, bytes: u64) -> f64 {
        self.uplink_s + bytes as f64 / Self::UPLINK_BYTES_PER_S
    }

    /// Time to download a payload of `bytes`: the fixed downlink
    /// latency plus the transfer at [`LinkModel::DOWNLINK_BYTES_PER_S`].
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn downlink_time_s(&self, bytes: u64) -> f64 {
        self.downlink_s + bytes as f64 / Self::DOWNLINK_BYTES_PER_S
    }

    /// Per-round communication time for actual payloads: uploading
    /// `uplink_bytes` (the device's encoded Q-table delta) and
    /// downloading `downlink_bytes` (the merged table pushed back).
    /// Degenerates to [`LinkModel::round_trip_s`] at zero bytes, so the
    /// fixed model is exactly the empty-payload case.
    #[must_use]
    pub fn round_trip_bytes_s(&self, uplink_bytes: u64, downlink_bytes: u64) -> f64 {
        self.uplink_time_s(uplink_bytes) + self.downlink_time_s(downlink_bytes)
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::paper()
    }
}

/// One hardware bin of the fleet: the silicon/thermal lottery a real
/// production run exhibits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocBin {
    /// Bin label (recorded in the fleet artifact).
    pub name: &'static str,
    /// Ambient temperature the device lives at, °C (thermal bin).
    pub ambient_c: f64,
    /// Multiplier on the platform's base power floor (power bin:
    /// leakier or better-binned silicon).
    pub power_scale: f64,
}

/// The fleet's hardware bins; devices are assigned round-robin.
pub const SOC_BINS: [SocBin; 4] = [
    SocBin {
        name: "typical",
        ambient_c: 21.0,
        power_scale: 1.0,
    },
    SocBin {
        name: "warm-climate",
        ambient_c: 27.0,
        power_scale: 1.0,
    },
    SocBin {
        name: "leaky-silicon",
        ambient_c: 21.0,
        power_scale: 1.15,
    },
    SocBin {
        name: "cool-efficient",
        ambient_c: 15.0,
        power_scale: 0.9,
    },
];

/// Builds the simulated device for a hardware bin: the given platform's
/// stock device at the bin's ambient with its base-power scale applied.
#[must_use]
pub fn soc_config_for(base: &SocConfig, bin: &SocBin) -> SocConfig {
    let mut cfg = base.clone().with_ambient(bin.ambient_c);
    cfg.platform.scale_base_power(bin.power_scale);
    cfg
}

/// One device of the simulated fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Device number (stable across rounds).
    pub id: usize,
    /// Index into [`SOC_BINS`].
    pub bin: usize,
    /// Index into [`FleetConfig::platforms`] — which platform this
    /// device is.
    pub platform: usize,
    /// Base seed of this device's user (per-round seeds derive from
    /// it, so every round sees fresh but reproducible behaviour).
    pub user_seed: u64,
}

/// Derives the deterministic device roster of a fleet: bins and
/// platforms assigned round-robin, user seeds split from the master
/// seed (platform assignment does not perturb the seed stream, so a
/// single-platform fleet matches the historical roster exactly).
#[must_use]
pub fn device_profiles(devices: usize, seed: u64, platforms: usize) -> Vec<DeviceProfile> {
    (0..devices)
        .map(|id| DeviceProfile {
            id,
            bin: id % SOC_BINS.len(),
            platform: id % platforms.max(1),
            user_seed: splitmix64(seed ^ (id as u64).wrapping_mul(0xa076_1d64_78bd_642f)),
        })
        .collect()
}

/// Configuration of a fleet simulation.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Application the fleet trains (the paper federates per-app
    /// tables).
    pub app: String,
    /// Number of devices.
    pub devices: usize,
    /// Number of federated rounds.
    pub rounds: usize,
    /// Master seed: device roster, user seeds and the held-out eval
    /// grid all derive from it.
    pub seed: u64,
    /// Local training budget per device per round, simulated seconds.
    pub round_budget_s: f64,
    /// Agent hyper-parameters shared by the fleet (the per-device
    /// platform comes from [`FleetConfig::platforms`], which overrides
    /// `next.platform`).
    pub next: NextConfig,
    /// Platform presets of the fleet's devices, assigned round-robin by
    /// device id. One entry = a homogeneous fleet.
    pub platforms: Vec<String>,
    /// Up-/down-link latency model.
    pub link: LinkModel,
    /// Held-out session seeds the merged table is evaluated on after
    /// every round (disjoint from training seeds by construction).
    pub eval_seeds: Vec<u64>,
    /// Session length of each held-out evaluation, simulated seconds.
    pub eval_duration_s: f64,
}

impl FleetConfig {
    /// Full-scale defaults: §V training budgets, paper link model, a
    /// 3-session held-out grid, a homogeneous Exynos 9810 fleet.
    #[must_use]
    pub fn new(app: &str, devices: usize, rounds: usize, seed: u64) -> Self {
        FleetConfig {
            app: app.to_owned(),
            devices,
            rounds,
            seed,
            round_budget_s: 300.0,
            next: NextConfig::paper(),
            platforms: vec!["exynos9810".to_owned()],
            link: LinkModel::paper(),
            eval_seeds: vec![9_001, 9_002, 9_003],
            eval_duration_s: 120.0,
        }
    }

    /// CI-smoke defaults: short local rounds and evaluations.
    #[must_use]
    pub fn quick(app: &str, devices: usize, rounds: usize, seed: u64) -> Self {
        FleetConfig {
            round_budget_s: 90.0,
            eval_seeds: vec![9_001, 9_002],
            eval_duration_s: 40.0,
            ..FleetConfig::new(app, devices, rounds, seed)
        }
    }

    /// Sets the fleet's platform mix.
    ///
    /// # Panics
    ///
    /// Panics on an empty list or a repeated platform name (groups are
    /// keyed by list position, so a duplicate would silently split one
    /// platform's devices into disjoint federated tables).
    #[must_use]
    pub fn with_platforms(mut self, platforms: Vec<String>) -> Self {
        assert!(!platforms.is_empty(), "fleet needs at least one platform");
        for (i, name) in platforms.iter().enumerate() {
            assert!(
                !platforms[..i].contains(name),
                "platform '{name}' listed twice"
            );
        }
        self.platforms = platforms;
        self
    }

    /// Whether the fleet is the historical homogeneous-9810 deployment
    /// (whose JSON artifact predates the `platform` fields).
    #[must_use]
    pub fn is_default_platform(&self) -> bool {
        self.platforms == ["exynos9810"]
    }
}

/// Held-out quality of the fleet's merged tables (means over the eval
/// grid; for mixed fleets, the unweighted mean over platform groups).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundEval {
    /// Mean presented FPS.
    pub avg_fps: f64,
    /// Mean FPS standard deviation (QoS stability).
    pub fps_std: f64,
    /// Mean platform power, watts.
    pub avg_power_w: f64,
    /// PPDW (Eq. 1) of the mean operating point, against the agent's
    /// ambient.
    pub ppdw: f64,
}

/// Telemetry of one federated round (summed / maxed across the
/// fleet's platform groups).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetRound {
    /// Round number, 0-based.
    pub round: usize,
    /// Visited states across the merged tables after this round.
    pub states: usize,
    /// Total visits across the merged tables after this round.
    pub visits: u64,
    /// Devices whose local training converged this round.
    pub converged_devices: usize,
    /// Slowest device's simulated local training time, seconds
    /// (devices train in parallel, so the round waits for the slowest).
    pub local_train_s: f64,
    /// Modeled communication overhead of the round, seconds.
    pub comm_s: f64,
    /// Modeled wall time of the round: slowest local training plus the
    /// communication round trip.
    pub round_time_s: f64,
    /// Held-out quality of the merged tables.
    pub eval: RoundEval,
}

/// One platform group's merged fleet table.
#[derive(Debug, Clone)]
pub struct PlatformTable {
    /// Platform preset name.
    pub platform: String,
    /// The group's final merged table.
    pub table: DenseQTable,
}

/// Result of a fleet simulation.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The configuration that ran.
    pub config: FleetConfig,
    /// The device roster.
    pub devices: Vec<DeviceProfile>,
    /// Per-round telemetry, in round order.
    pub rounds: Vec<FleetRound>,
    /// The final merged fleet table of every platform group, in
    /// [`FleetConfig::platforms`] order.
    pub tables: Vec<PlatformTable>,
}

impl FleetReport {
    /// Total visited states across the platform groups' final tables.
    #[must_use]
    pub fn total_states(&self) -> usize {
        self.tables.iter().map(|t| t.table.len()).sum()
    }

    /// Total visits across the platform groups' final tables.
    #[must_use]
    pub fn total_visits(&self) -> u64 {
        self.tables.iter().map(|t| t.table.total_visits()).sum()
    }
}

/// The agent configuration a platform group's devices train with: the
/// fleet's shared hyper-parameters on the group's platform.
fn group_next(config: &FleetConfig, preset: &PlatformPreset) -> NextConfig {
    NextConfig {
        platform: preset.next.platform.clone(),
        ..config.next.clone()
    }
}

/// Evaluates one platform group's merged table on the held-out session
/// grid.
fn evaluate_group(
    config: &FleetConfig,
    preset: &PlatformPreset,
    table: &DenseQTable,
    workers: usize,
) -> RoundEval {
    let next = group_next(config, preset);
    let summaries = parallel_map(&config.eval_seeds, workers, |&seed| {
        let mut agent = NextAgent::with_table(next.clone(), table.clone(), false);
        let plan = SessionPlan::single(&config.app, config.eval_duration_s);
        evaluate_governor_on(&mut agent, &plan, seed, &preset.soc).summary
    });
    let n = summaries.len() as f64;
    let avg_fps = summaries.iter().map(|s| s.avg_fps).sum::<f64>() / n;
    let fps_std = summaries.iter().map(|s| s.fps_std).sum::<f64>() / n;
    let avg_power_w = summaries.iter().map(|s| s.avg_power_w).sum::<f64>() / n;
    let avg_temp_hot_c = summaries.iter().map(|s| s.avg_temp_hot_c).sum::<f64>() / n;
    RoundEval {
        avg_fps,
        fps_std,
        avg_power_w,
        ppdw: ppdw(
            avg_fps.max(config.next.bounds.fps_least),
            avg_power_w,
            avg_temp_hot_c,
            config.next.ambient_c,
        ),
    }
}

/// Runs the fleet simulation: R federated rounds over D heterogeneous
/// devices, local training via the work-stealing parallel runner, one
/// streaming merge per platform group and one held-out evaluation per
/// round.
///
/// Deterministic for a fixed config: the report — including every
/// float — is identical for any `workers` value (the 1-vs-N guarantee
/// the sweep engine already gives).
///
/// # Panics
///
/// Panics if the config names an unknown app or platform, or
/// `devices`, `rounds`, or the eval grid is empty.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_fleet(config: &FleetConfig, workers: usize) -> FleetReport {
    assert!(
        apps::by_name(&config.app).is_some(),
        "unknown app '{}'",
        config.app
    );
    assert!(config.devices > 0, "fleet needs at least one device");
    assert!(config.rounds > 0, "fleet needs at least one round");
    assert!(
        !config.eval_seeds.is_empty(),
        "fleet needs a held-out eval grid"
    );
    assert!(
        !config.platforms.is_empty(),
        "fleet needs at least one platform"
    );
    let presets: Vec<PlatformPreset> = config
        .platforms
        .iter()
        .map(|name| {
            // qlint::allow(PN01, reason = "run_fleet documents the panic; an unknown platform is an unusable config")
            PlatformPreset::by_name(name).unwrap_or_else(|| panic!("unknown platform '{name}'"))
        })
        .collect();

    let devices = device_profiles(config.devices, config.seed, presets.len());
    let trainer = Trainer::new();
    // One federated table per platform group — Q-tables of different
    // platforms are not interchangeable.
    let mut fleet_tables: Vec<Option<DenseQTable>> = vec![None; presets.len()];
    let mut rounds = Vec::with_capacity(config.rounds);

    for round in 0..config.rounds {
        // Local training on every device. Each device's run is a pure
        // function of (profile, round, its group table); devices of one
        // platform group train in lockstep through the batched
        // structure-of-arrays kernel (bit-identical to one-at-a-time
        // runs), and groups fan out on the parallel runner.
        let specs: Vec<TrainSpec> = devices
            .iter()
            .map(|dev| {
                let preset = &presets[dev.platform];
                let round_seed =
                    splitmix64(dev.user_seed ^ (round as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
                let mut spec = TrainSpec::new(
                    &config.app,
                    group_next(config, preset).with_seed(round_seed),
                    round_seed,
                    config.round_budget_s,
                )
                .with_soc(soc_config_for(&preset.soc, &SOC_BINS[dev.bin]));
                if let Some(table) = &fleet_tables[dev.platform] {
                    spec = spec.with_warm_start(table.clone());
                }
                spec
            })
            .collect();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); presets.len()];
        for (i, dev) in devices.iter().enumerate() {
            groups[dev.platform].push(i);
        }
        let group_outcomes: Vec<Vec<TrainOutcome>> = parallel_map(&groups, workers, |idxs| {
            trainer.train_batch(idxs.iter().map(|&i| specs[i].clone()).collect())
        });
        // Scatter the group results back into device order (the merge
        // below folds uploads in device order).
        let mut slots: Vec<Option<TrainOutcome>> = (0..devices.len()).map(|_| None).collect();
        for (idxs, outs) in groups.iter().zip(group_outcomes) {
            for (&i, out) in idxs.iter().zip(outs) {
                slots[i] = Some(out);
            }
        }
        let outcomes: Vec<TrainOutcome> = slots
            .into_iter()
            // qlint::allow(PN01, reason = "parallel_map fills every slot exactly once by index")
            .map(|s| s.expect("every device trained"))
            .collect();

        // Cloud-side streaming merge, per platform group, in device
        // order: each uploaded table is folded and released — the
        // accumulators are the only fleet-sized state.
        let mut converged_devices = 0usize;
        let mut local_train_s = 0.0f64;
        for outcome in &outcomes {
            converged_devices += usize::from(outcome.converged);
            local_train_s = local_train_s.max(outcome.training_time_s);
        }
        let mut accs: Vec<Option<MergeAccumulator<DenseStore>>> =
            (0..presets.len()).map(|_| None).collect();
        for (dev, outcome) in devices.iter().zip(outcomes) {
            let table = outcome.agent.into_table();
            let acc = accs[dev.platform]
                .get_or_insert_with(|| MergeAccumulator::new(table.n_actions(), table.default_q()));
            acc.fold(&table)
                // qlint::allow(PN01, reason = "all tables of a platform group come from the same preset's action count")
                .expect("a platform group shares one action space");
        }
        let merged: Vec<Option<DenseQTable>> = accs
            .into_iter()
            // qlint::allow(PN01, reason = "an accumulator is Some only after at least one fold")
            .map(|acc| acc.map(|a| a.finish().expect("non-empty group folded")))
            .collect();

        // Held-out evaluation per populated group; the round's eval is
        // the unweighted mean over groups.
        let mut evals: Vec<RoundEval> = Vec::new();
        let mut states = 0usize;
        let mut visits = 0u64;
        for (pi, table) in merged.iter().enumerate() {
            if let Some(table) = table {
                states += table.len();
                visits += table.total_visits();
                evals.push(evaluate_group(config, &presets[pi], table, workers));
            }
        }
        let n = evals.len() as f64;
        let eval = RoundEval {
            avg_fps: evals.iter().map(|e| e.avg_fps).sum::<f64>() / n,
            fps_std: evals.iter().map(|e| e.fps_std).sum::<f64>() / n,
            avg_power_w: evals.iter().map(|e| e.avg_power_w).sum::<f64>() / n,
            ppdw: evals.iter().map(|e| e.ppdw).sum::<f64>() / n,
        };

        let comm_s = config.link.round_trip_s();
        rounds.push(FleetRound {
            round,
            states,
            visits,
            converged_devices,
            local_train_s,
            comm_s,
            round_time_s: local_train_s + comm_s,
            eval,
        });
        for (slot, table) in fleet_tables.iter_mut().zip(merged) {
            if table.is_some() {
                *slot = table;
            }
        }
    }

    let tables = config
        .platforms
        .iter()
        .zip(fleet_tables)
        .filter_map(|(name, table)| {
            table.map(|table| PlatformTable {
                platform: name.clone(),
                table,
            })
        })
        .collect();
    FleetReport {
        config: config.clone(),
        devices,
        rounds,
        tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        FleetConfig {
            round_budget_s: 40.0,
            eval_seeds: vec![9_001],
            eval_duration_s: 20.0,
            ..FleetConfig::new("facebook", 3, 2, 7)
        }
    }

    #[test]
    fn fleet_runs_and_accumulates_knowledge() {
        let report = run_fleet(&tiny(), 2);
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.devices.len(), 3);
        let (r0, r1) = (&report.rounds[0], &report.rounds[1]);
        assert!(r0.states > 0);
        assert!(
            r1.visits > r0.visits,
            "later rounds accumulate visits: {} vs {}",
            r1.visits,
            r0.visits
        );
        assert!(r0.eval.avg_power_w > 0.5);
        assert!(r0.eval.ppdw > 0.0);
        assert_eq!(r0.comm_s, LinkModel::paper().round_trip_s());
        assert!(r0.round_time_s > r0.comm_s);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.total_states(), r1.states);
    }

    #[test]
    fn fleet_is_worker_count_invariant() {
        let config = tiny();
        let a = run_fleet(&config, 1);
        let b = run_fleet(&config, 4);
        assert_eq!(a.rounds, b.rounds, "telemetry must not depend on workers");
        assert_eq!(
            a.tables[0].table.encode(),
            b.tables[0].table.encode(),
            "merged table must be byte-identical across worker counts"
        );
    }

    #[test]
    fn mixed_platform_fleet_keeps_per_platform_tables() {
        let config = FleetConfig {
            round_budget_s: 30.0,
            eval_seeds: vec![9_001],
            eval_duration_s: 15.0,
            ..FleetConfig::new("facebook", 4, 1, 11)
        }
        .with_platforms(vec!["exynos9810".to_owned(), "exynos9820".to_owned()]);
        let report = run_fleet(&config, 2);
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.tables[0].platform, "exynos9810");
        assert_eq!(report.tables[1].platform, "exynos9820");
        assert_eq!(
            report.tables[0].table.n_actions(),
            9,
            "9810 group keeps the 9-action table"
        );
        assert_eq!(
            report.tables[1].table.n_actions(),
            12,
            "9820 group gets the 12-action table"
        );
        assert!(report.rounds[0].eval.avg_power_w > 0.5);
        // Devices alternate platforms round-robin.
        let plats: Vec<usize> = report.devices.iter().map(|d| d.platform).collect();
        assert_eq!(plats, vec![0, 1, 0, 1]);
    }

    #[test]
    fn device_roster_is_deterministic_and_heterogeneous() {
        let a = device_profiles(8, 42, 1);
        let b = device_profiles(8, 42, 1);
        assert_eq!(a, b);
        let bins: std::collections::HashSet<usize> = a.iter().map(|d| d.bin).collect();
        assert_eq!(bins.len(), SOC_BINS.len(), "8 devices cover all 4 bins");
        let seeds: std::collections::HashSet<u64> = a.iter().map(|d| d.user_seed).collect();
        assert_eq!(seeds.len(), 8, "every device gets its own user");
        assert_ne!(device_profiles(8, 43, 1), a, "master seed matters");
        // Platform assignment does not perturb user seeds.
        let mixed = device_profiles(8, 42, 2);
        for (x, y) in a.iter().zip(&mixed) {
            assert_eq!(x.user_seed, y.user_seed);
        }
    }

    #[test]
    fn link_bytes_model_extends_the_fixed_constant() {
        let link = LinkModel::paper();
        // Zero payload degenerates to the legacy fixed round trip, the
        // fallback the fleet schema keeps.
        assert_eq!(link.round_trip_bytes_s(0, 0), link.round_trip_s());
        // Payload time adds on top, asymmetrically per direction.
        let t = link.round_trip_bytes_s(1_000_000, 4_000_000);
        assert!((t - (link.round_trip_s() + 2.0)).abs() < 1e-12, "got {t}");
        assert!(link.uplink_time_s(500_000) > link.uplink_s);
        assert!(
            link.uplink_time_s(1_000_000) > link.downlink_time_s(1_000_000),
            "uplink is the slow direction"
        );
    }

    #[test]
    fn soc_bins_shape_the_device() {
        let base = SocConfig::exynos9810();
        let leaky = soc_config_for(&base, &SOC_BINS[2]);
        assert!(leaky.platform.base_power_w() > base.platform.base_power_w());
        let warm = soc_config_for(&base, &SOC_BINS[1]);
        assert!(warm.thermal.ambient_c > base.thermal.ambient_c);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let mut config = tiny();
        config.devices = 0;
        let _ = run_fleet(&config, 1);
    }

    #[test]
    #[should_panic(expected = "unknown platform")]
    fn unknown_platform_rejected() {
        let config = tiny().with_platforms(vec!["vaporware9000".to_owned()]);
        let _ = run_fleet(&config, 1);
    }
}
