//! Closed-loop simulation engine and experiment protocol.
//!
//! Ties the substrates together the way the paper's testbed does: a
//! [`workload::SessionSim`] produces the user-driven frame demand, the
//! [`mpsoc::Soc`] executes it, and a [`governors::Governor`] (schedutil,
//! Int. QoS PM, or the Next agent) closes the loop through the DVFS
//! policy caps. Everything advances on a 25 ms base tick — the paper's
//! frame-sampling period — with governors invoked at their own control
//! periods.
//!
//! * [`engine`] — the simulation loop,
//! * [`batch`] — the lockstep multi-device entry point over
//!   [`mpsoc::SocBatch`] (bit-identical to lane-sequential runs),
//! * [`metrics`] — time-series recording and summaries (average power,
//!   peak temperatures, FPS statistics — the quantities of Figs. 3, 7
//!   and 8),
//! * [`experiment`] — the paper's evaluation protocol: train Next once
//!   per app, then measure per-governor sessions,
//! * [`trainer`] — the reusable training loop (episode budget,
//!   convergence stop, warm starts, per-device SoC bins) behind both
//!   the experiment protocol and the fleet,
//! * [`fleet`] — fleet-scale federated training: R rounds over D
//!   heterogeneous devices with streaming cloud merges and held-out
//!   evaluation (§IV-C at production scale),
//! * [`day`] — battery-day simulation: a whole [`workload::DayPlan`]
//!   of pickups and screen-off gaps executed on one continuous device
//!   state, with per-app Q-tables fetched/stored through the §IV-B
//!   store,
//! * [`campaign`] — the sharded, checkpointed million-device campaign
//!   runner: federated rounds of whole battery-days from seeded
//!   cohorts, binary Q-table deltas pricing the uplink, and an
//!   atomically-written `NXCP` checkpoint that resumes byte-identically,
//! * [`report`] — plain-text tables and series for the bench harness,
//! * [`sweep`] — the work-stealing parallel runner for governor×app×seed
//!   grids, with deterministic row merging,
//! * [`trace`] — the compact per-tick binary trace format plus the
//!   zero-cost [`trace::TraceSink`] hook, the recorder behind
//!   `next-sim replay`/`bisect`, and the field-level trace differ.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod campaign;
pub mod day;
pub mod engine;
pub mod experiment;
pub mod fleet;
pub mod metrics;
pub mod platform;
pub mod report;
pub mod sweep;
pub mod trace;
pub mod trainer;

pub use batch::BatchLane;
pub use campaign::{
    run_campaign, run_campaign_from_seed, run_campaign_with, warm_seed, CampaignConfig,
    CampaignOptions, CampaignOutcome, CampaignReport, CampaignRound, CampaignWarmSeed,
    CohortSummary, MetricSummary, TableArtifact,
};
pub use day::{
    replay_day, run_day, run_day_lanes, run_day_lanes_traced, run_day_traced, run_days,
    run_days_traced, DayReport, DaySpec, SessionReport,
};
pub use engine::{Engine, RunOutcome};
pub use experiment::{train_next_for_app, EvalResult};
pub use fleet::{run_fleet, FleetConfig, FleetReport};
pub use metrics::{Battery, Sample, Summary, Trace};
pub use platform::PlatformPreset;
pub use sweep::{parallel_map, run_cells, StandardEvaluator, SweepCell, SweepRow};
pub use trace::{
    bisect, BisectReport, NullSink, SegmentKind, TickRecord, TickTrace, TraceError, TraceMeta,
    TraceRecorder, TraceSink,
};
pub use trainer::{TrainOutcome, TrainSpec, Trainer};
