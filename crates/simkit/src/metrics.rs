//! Time-series recording and summary statistics.

use mpsoc::platform::PerDomain;

/// One recorded simulation tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulated time, seconds.
    pub time_s: f64,
    /// Presented FPS over the tick.
    pub fps: f64,
    /// Total platform power, watts.
    pub power_w: f64,
    /// Hot-spot sensor temperature (the big cluster on the shipped
    /// presets), °C.
    pub temp_hot_c: f64,
    /// Virtual device sensor temperature, °C.
    pub temp_device_c: f64,
    /// Per-domain frequency, kHz, in platform order.
    pub freq_khz: PerDomain<u32>,
}

/// A recorded run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    samples: Vec<Sample>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Drops all samples, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Reserves room for at least `additional` further samples, so a
    /// run of known length pays for at most one allocation.
    pub fn reserve(&mut self, additional: usize) {
        self.samples.reserve(additional);
    }

    /// The recorded samples in time order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Resamples to roughly one sample every `step_s` seconds by
    /// averaging each bucket — how the paper's 3-second figure traces
    /// are produced from 25 ms data.
    #[must_use]
    pub fn resampled(&self, step_s: f64) -> Vec<Sample> {
        if self.samples.is_empty() || step_s <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut bucket: Vec<&Sample> = Vec::new();
        let mut bucket_end = self.samples[0].time_s + step_s;
        for s in &self.samples {
            if s.time_s >= bucket_end && !bucket.is_empty() {
                out.push(Self::average(&bucket));
                bucket.clear();
                while s.time_s >= bucket_end {
                    bucket_end += step_s;
                }
            }
            bucket.push(s);
        }
        if !bucket.is_empty() {
            out.push(Self::average(&bucket));
        }
        out
    }

    fn average(bucket: &[&Sample]) -> Sample {
        let n = bucket.len() as f64;
        let domains = bucket[0].freq_khz.len();
        let mut avg = Sample {
            time_s: 0.0,
            fps: 0.0,
            power_w: 0.0,
            temp_hot_c: 0.0,
            temp_device_c: 0.0,
            freq_khz: PerDomain::new(domains),
        };
        let mut freq_acc = vec![0.0f64; domains];
        for s in bucket {
            avg.time_s += s.time_s;
            avg.fps += s.fps;
            avg.power_w += s.power_w;
            avg.temp_hot_c += s.temp_hot_c;
            avg.temp_device_c += s.temp_device_c;
            for (acc, &khz) in freq_acc.iter_mut().zip(s.freq_khz.iter()) {
                *acc += f64::from(khz);
            }
        }
        avg.time_s /= n;
        avg.fps /= n;
        avg.power_w /= n;
        avg.temp_hot_c /= n;
        avg.temp_device_c /= n;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            avg.freq_khz = PerDomain::from_fn(domains, |i| (freq_acc[i] / n) as u32);
        }
        avg
    }

    /// Computes summary statistics over the whole trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn summary(&self) -> Summary {
        assert!(!self.samples.is_empty(), "cannot summarise an empty trace");
        let n = self.samples.len() as f64;
        let mut s = Summary {
            // qlint::allow(PN01, reason = "the assert above rejects empty traces")
            duration_s: self.samples.last().expect("non-empty").time_s
                // qlint::allow(PN01, reason = "the assert above rejects empty traces")
                - self.samples.first().expect("non-empty").time_s,
            ..Summary::default()
        };
        s.peak_power_w = f64::MIN;
        s.peak_temp_hot_c = f64::MIN;
        s.peak_temp_device_c = f64::MIN;
        for x in &self.samples {
            s.avg_power_w += x.power_w;
            s.avg_fps += x.fps;
            s.avg_temp_hot_c += x.temp_hot_c;
            s.peak_power_w = s.peak_power_w.max(x.power_w);
            s.peak_temp_hot_c = s.peak_temp_hot_c.max(x.temp_hot_c);
            s.peak_temp_device_c = s.peak_temp_device_c.max(x.temp_device_c);
        }
        s.avg_power_w /= n;
        s.avg_fps /= n;
        s.avg_temp_hot_c /= n;
        let mut var = 0.0;
        for x in &self.samples {
            var += (x.fps - s.avg_fps).powi(2);
        }
        s.fps_std = (var / n).sqrt();
        // Energy via sample spacing (uniform ticks).
        if self.samples.len() > 1 {
            let dt = s.duration_s / (n - 1.0);
            s.energy_j = self.samples.iter().map(|x| x.power_w * dt).sum();
        }
        s
    }
}

/// Battery model for translating session energy into user-meaningful
/// drain: the Note 9 ships a 4000 mAh pack at a 3.85 V nominal rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Capacity in milliamp-hours.
    pub capacity_mah: f64,
    /// Nominal rail voltage in volts.
    pub nominal_v: f64,
}

impl Battery {
    /// The Galaxy Note 9 pack (4000 mAh, 3.85 V).
    #[must_use]
    pub fn note9() -> Self {
        Battery {
            capacity_mah: 4_000.0,
            nominal_v: 3.85,
        }
    }

    /// Total pack energy in joules.
    #[must_use]
    pub fn capacity_j(&self) -> f64 {
        self.capacity_mah / 1_000.0 * 3_600.0 * self.nominal_v
    }

    /// Percentage of the pack a run consuming `energy_j` drains,
    /// saturating at 100 % — a pack cannot drain past empty, and
    /// day-scale energies can legitimately exceed one charge. Use
    /// [`Battery::charges_used`] when the overshoot itself matters.
    #[must_use]
    pub fn drain_percent(&self, energy_j: f64) -> f64 {
        (energy_j.max(0.0) / self.capacity_j() * 100.0).min(100.0)
    }

    /// How many full charges `energy_j` consumes (1.0 = exactly one
    /// pack). Unclamped: the day-scale counterpart of
    /// [`Battery::drain_percent`].
    #[must_use]
    pub fn charges_used(&self, energy_j: f64) -> f64 {
        energy_j.max(0.0) / self.capacity_j()
    }

    /// Screen-on hours the pack sustains at a given average power.
    #[must_use]
    pub fn hours_at(&self, avg_power_w: f64) -> f64 {
        if avg_power_w <= 0.0 {
            return f64::INFINITY;
        }
        self.capacity_j() / avg_power_w / 3_600.0
    }
}

impl Default for Battery {
    fn default() -> Self {
        Battery::note9()
    }
}

/// Aggregates of one run — the quantities the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Trace length, seconds.
    pub duration_s: f64,
    /// Mean platform power, watts (Figs. 3 and 7).
    pub avg_power_w: f64,
    /// Peak platform power, watts.
    pub peak_power_w: f64,
    /// Mean presented FPS.
    pub avg_fps: f64,
    /// FPS standard deviation (QoS stability).
    pub fps_std: f64,
    /// Mean hot-spot (big-cluster) temperature, °C.
    pub avg_temp_hot_c: f64,
    /// Peak hot-spot temperature, °C (Figs. 3 and 8).
    pub peak_temp_hot_c: f64,
    /// Peak device temperature, °C (Fig. 8).
    pub peak_temp_device_c: f64,
    /// Total energy over the run, joules.
    pub energy_j: f64,
}

impl Summary {
    /// Percentage saving of `self` versus a `baseline` average power
    /// (positive = this run is cheaper).
    #[must_use]
    pub fn power_saving_vs(&self, baseline: &Summary) -> f64 {
        if baseline.avg_power_w <= 0.0 {
            return 0.0;
        }
        (1.0 - self.avg_power_w / baseline.avg_power_w) * 100.0
    }

    /// Percentage peak-hot-spot-temperature reduction versus a
    /// baseline, computed on the rise above the given ambient (the
    /// physically meaningful quantity).
    #[must_use]
    pub fn hot_temp_reduction_vs(&self, baseline: &Summary, ambient_c: f64) -> f64 {
        let base = baseline.peak_temp_hot_c - ambient_c;
        if base <= 0.0 {
            return 0.0;
        }
        (1.0 - (self.peak_temp_hot_c - ambient_c) / base) * 100.0
    }

    /// Percentage peak-device-temperature reduction versus a baseline.
    #[must_use]
    pub fn device_temp_reduction_vs(&self, baseline: &Summary, ambient_c: f64) -> f64 {
        let base = baseline.peak_temp_device_c - ambient_c;
        if base <= 0.0 {
            return 0.0;
        }
        (1.0 - (self.peak_temp_device_c - ambient_c) / base) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, fps: f64, p: f64, th: f64) -> Sample {
        Sample {
            time_s: t,
            fps,
            power_w: p,
            temp_hot_c: th,
            temp_device_c: th - 10.0,
            freq_khz: PerDomain::from_slice(&[1_000_000, 500_000, 300_000]),
        }
    }

    #[test]
    fn summary_basics() {
        let mut trace = Trace::new();
        trace.push(sample(0.0, 30.0, 2.0, 40.0));
        trace.push(sample(1.0, 60.0, 4.0, 50.0));
        let s = trace.summary();
        assert_eq!(s.avg_fps, 45.0);
        assert_eq!(s.avg_power_w, 3.0);
        assert_eq!(s.peak_power_w, 4.0);
        assert_eq!(s.peak_temp_hot_c, 50.0);
        assert_eq!(s.peak_temp_device_c, 40.0);
        assert_eq!(s.duration_s, 1.0);
        assert!((s.fps_std - 15.0).abs() < 1e-9);
        assert!((s.energy_j - 6.0).abs() < 1e-9, "2 samples, dt=1: (2+4)·1");
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_summary_panics() {
        let _ = Trace::new().summary();
    }

    #[test]
    fn resampling_shrinks_and_averages() {
        let mut trace = Trace::new();
        for i in 0..400 {
            let t = f64::from(i) * 0.025;
            trace.push(sample(t, 60.0, 3.0, 45.0));
        }
        let res = trace.resampled(1.0);
        assert!(
            res.len() >= 9 && res.len() <= 11,
            "got {} buckets",
            res.len()
        );
        for r in &res {
            assert!((r.fps - 60.0).abs() < 1e-9);
            assert!((r.power_w - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn resampling_empty_or_bad_step() {
        let trace = Trace::new();
        assert!(trace.resampled(1.0).is_empty());
        let mut t2 = Trace::new();
        t2.push(sample(0.0, 1.0, 1.0, 30.0));
        assert!(t2.resampled(0.0).is_empty());
    }

    #[test]
    fn battery_model_note9() {
        let b = Battery::note9();
        // 4000 mAh at 3.85 V = 55.44 kJ.
        assert!((b.capacity_j() - 55_440.0).abs() < 1.0);
        // A 300 s gaming session at 7 W drains ~3.8 %.
        let drain = b.drain_percent(7.0 * 300.0);
        assert!((drain - 3.79).abs() < 0.05, "drain {drain}");
        // Screen-on time scales inversely with power.
        assert!((b.hours_at(3.5) - 2.0 * b.hours_at(7.0)).abs() < 1e-9);
        assert_eq!(b.hours_at(0.0), f64::INFINITY);
        assert_eq!(b.drain_percent(-5.0), 0.0);
    }

    #[test]
    fn over_capacity_drain_saturates_at_one_pack() {
        // A day that burns 1.5 packs: the reported drain caps at 100 %
        // (a battery cannot go past empty) while charges_used keeps the
        // overshoot.
        let b = Battery::note9();
        let energy = b.capacity_j() * 1.5;
        assert_eq!(b.drain_percent(energy), 100.0);
        assert!((b.charges_used(energy) - 1.5).abs() < 1e-12);
        assert_eq!(b.charges_used(-1.0), 0.0);
        // Sub-capacity energies are unaffected by the clamp.
        assert!((b.drain_percent(b.capacity_j() / 2.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn savings_math() {
        let a = Summary {
            avg_power_w: 2.0,
            peak_temp_hot_c: 41.0,
            peak_temp_device_c: 31.0,
            ..Summary::default()
        };
        let b = Summary {
            avg_power_w: 4.0,
            peak_temp_hot_c: 61.0,
            peak_temp_device_c: 41.0,
            ..Summary::default()
        };
        assert!((a.power_saving_vs(&b) - 50.0).abs() < 1e-9);
        assert!((a.hot_temp_reduction_vs(&b, 21.0) - 50.0).abs() < 1e-9);
        assert!((a.device_temp_reduction_vs(&b, 21.0) - 50.0).abs() < 1e-9);
        assert_eq!(a.power_saving_vs(&Summary::default()), 0.0);
    }
}
