//! Named platform presets for the experiment layers.
//!
//! A [`PlatformPreset`] bundles everything the sweep, perf and fleet
//! front ends need to run a named platform end to end: the device
//! ([`SocConfig`]) and the matching agent configuration
//! ([`NextConfig`], whose action and state spaces are shaped by the
//! same platform descriptor). The `--platform` CLI flag resolves
//! through [`PlatformPreset::by_name`].

use mpsoc::platform::Platform;
use mpsoc::soc::SocConfig;
use next_core::NextConfig;

/// A named, ready-to-run platform: device config + agent config.
#[derive(Debug, Clone)]
pub struct PlatformPreset {
    /// Preset name (`"exynos9810"`, `"exynos9820"`).
    pub name: String,
    /// The simulated device.
    pub soc: SocConfig,
    /// The Next agent configuration shaped for the device's platform.
    pub next: NextConfig,
}

impl PlatformPreset {
    /// The paper's Galaxy Note 9 (`m = 3`, 9 actions).
    #[must_use]
    pub fn exynos9810() -> Self {
        PlatformPreset {
            name: "exynos9810".to_owned(),
            soc: SocConfig::exynos9810(),
            next: NextConfig::paper(),
        }
    }

    /// The Galaxy-S10-class tri-cluster preset (`m = 4`, 12 actions).
    #[must_use]
    pub fn exynos9820() -> Self {
        PlatformPreset {
            name: "exynos9820".to_owned(),
            soc: SocConfig::exynos9820(),
            next: NextConfig::paper_on(Platform::exynos9820()),
        }
    }

    /// Looks a preset up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "exynos9810" => Some(PlatformPreset::exynos9810()),
            "exynos9820" => Some(PlatformPreset::exynos9820()),
            _ => None,
        }
    }

    /// Names of the shipped presets.
    #[must_use]
    pub fn names() -> &'static [&'static str] {
        Platform::preset_names()
    }
}

impl Default for PlatformPreset {
    fn default() -> Self {
        PlatformPreset::exynos9810()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for &name in PlatformPreset::names() {
            let p = PlatformPreset::by_name(name).expect("preset exists");
            assert_eq!(p.name, name);
            assert_eq!(p.soc.platform.name(), name);
            assert_eq!(
                p.next.platform.freq_levels(),
                p.soc.platform.freq_levels(),
                "agent and device must describe the same platform"
            );
        }
        assert!(PlatformPreset::by_name("apple-a13").is_none());
    }

    #[test]
    fn exynos9820_preset_has_twelve_actions() {
        let p = PlatformPreset::exynos9820();
        assert_eq!(p.next.platform.action_count(), 12);
        assert_eq!(p.soc.platform.n_domains(), 4);
    }
}
