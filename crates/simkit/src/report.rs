//! Plain-text report formatting for the bench harness: aligned tables
//! (the per-app comparisons of Figs. 7 and 8) and `time,value` series
//! (the traces of Figs. 1 and 3).

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|&h| h.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

/// Renders a `(x, y)` series as CSV with a header, the format the fig
/// binaries print so their output can be plotted directly.
#[must_use]
pub fn render_series(name: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# series: {name}");
    let _ = writeln!(out, "{x_label},{y_label}");
    for (x, y) in points {
        let _ = writeln!(out, "{x:.3},{y:.4}");
    }
    out
}

/// Renders multiple aligned series sharing one x axis.
///
/// # Panics
///
/// Panics if the series lengths differ from the x-axis length.
#[must_use]
pub fn render_multi_series(
    name: &str,
    x_label: &str,
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
) -> String {
    for (label, ys) in series {
        assert_eq!(ys.len(), xs.len(), "series '{label}' length mismatch");
    }
    let mut out = String::new();
    let _ = writeln!(out, "# series: {name}");
    let labels: Vec<&str> = series.iter().map(|(l, _)| *l).collect();
    let _ = writeln!(out, "{x_label},{}", labels.join(","));
    for (i, x) in xs.iter().enumerate() {
        let ys: Vec<String> = series.iter().map(|(_, v)| format!("{:.4}", v[i])).collect();
        let _ = writeln!(out, "{x:.3},{}", ys.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Power", &["app", "schedutil (W)", "next (W)"]);
        t.push_row(vec!["facebook".into(), "3.52".into(), "2.04".into()]);
        t.push_row(vec!["pubg".into(), "7.80".into(), "4.61".into()]);
        let s = t.render();
        assert!(s.contains("== Power =="));
        assert!(s.contains("facebook"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Columns aligned: both data lines have the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn series_csv_shape() {
        let s = render_series("fig1", "time_s", "fps", &[(0.0, 60.0), (3.0, 42.5)]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "# series: fig1");
        assert_eq!(lines[1], "time_s,fps");
        assert_eq!(lines[2], "0.000,60.0000");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn multi_series_aligns_columns() {
        let s = render_multi_series(
            "fig3",
            "time_s",
            &[0.0, 1.0],
            &[("pow_sched", vec![3.5, 3.6]), ("pow_next", vec![2.0, 2.1])],
        );
        assert!(s.contains("time_s,pow_sched,pow_next"));
        assert!(s.contains("1.000,3.6000,2.1000"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn multi_series_length_checked() {
        let _ = render_multi_series("x", "t", &[0.0, 1.0], &[("a", vec![1.0])]);
    }
}
