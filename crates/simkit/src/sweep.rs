//! Parallel governor×app×seed sweeps.
//!
//! The paper's §V evaluation protocol measures every governor on every
//! application over seeded sessions — an embarrassingly parallel grid of
//! fully independent simulations. This module runs that grid across
//! threads with a small work-stealing scheduler built on scoped
//! `std::thread` (no external dependencies) and merges the per-cell
//! [`Summary`] rows **deterministically**: the output is a pure function
//! of the cell list, identical for any worker count.
//!
//! Three layers, each usable on its own:
//!
//! * [`parallel_map`] — generic ordered work-stealing map over a slice,
//! * [`grid`] / [`run_cells`] — sweep cells and their parallel execution
//!   with a caller-supplied evaluator,
//! * [`StandardEvaluator`] — the stock evaluator covering every governor
//!   this workspace ships (training Next once per app, in parallel,
//!   before the measurement grid runs).
//!
//! Determinism argument: every cell is evaluated by a *pure* function of
//! the cell itself (fresh SoC, fresh governor, fixed seeds — see
//! [`crate::experiment::evaluate_governor`]), results are written back
//! by cell index, and [`report`] sorts rows by key before rendering.
//! Thread scheduling can change only *when* a cell runs, never its
//! result or its place in the output.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::thread;

use governors::Governor;
use next_core::NextAgent;
use qlearn::DenseQTable;
use workload::{apps, SessionPlan};

use crate::experiment::evaluate_governor_on;
use crate::metrics::Summary;
use crate::platform::PlatformPreset;
use crate::report::Table;
use crate::trainer::{TrainSpec, Trainer};

/// One point of the sweep grid: a governor measured on an app session.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Application name (see `workload::apps`).
    pub app: String,
    /// Governor name (see [`StandardEvaluator::GOVERNORS`]).
    pub governor: String,
    /// Session seed.
    pub seed: u64,
    /// Session length, simulated seconds.
    pub duration_s: f64,
}

/// One finished cell: the cell plus its run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The grid point that was measured.
    pub cell: SweepCell,
    /// Summary statistics of the run.
    pub summary: Summary,
}

/// Builds the full `apps × governors × seeds` cell list in deterministic
/// (app-major, then governor, then seed) order.
///
/// `duration_s` of `None` uses the paper's per-app session length
/// (games 5 min, other apps 2.5 min).
#[must_use]
pub fn grid(
    apps: &[String],
    governors: &[String],
    seeds: &[u64],
    duration_s: Option<f64>,
) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(apps.len() * governors.len() * seeds.len());
    for app in apps {
        let duration = duration_s.unwrap_or_else(|| SessionPlan::paper_session_length_s(app));
        for governor in governors {
            for &seed in seeds {
                cells.push(SweepCell {
                    app: app.clone(),
                    governor: governor.clone(),
                    seed,
                    duration_s: duration,
                });
            }
        }
    }
    cells
}

/// Per-worker index stripes with round-robin stealing: a worker that
/// drains its own stripe takes items from the back of the next
/// non-empty neighbour.
struct StripeQueue {
    stripes: Vec<Mutex<(usize, usize)>>,
}

impl StripeQueue {
    /// Splits `0..n` into one contiguous stripe per worker.
    fn new(n: usize, workers: usize) -> Self {
        let per = n.div_ceil(workers);
        let stripes = (0..workers)
            .map(|w| Mutex::new(((w * per).min(n), ((w + 1) * per).min(n))))
            .collect();
        StripeQueue { stripes }
    }

    /// Next index for worker `w`: front of its own stripe, else one
    /// stolen from the back of another worker's stripe. `None` only
    /// after a full scan found every stripe empty — since stripes never
    /// grow, that state is permanent and the worker can retire.
    fn next(&self, w: usize) -> Option<usize> {
        {
            // qlint::allow(PN01, reason = "a poisoned stripe lock means a worker already panicked; propagating is correct")
            let mut own = self.stripes[w].lock().expect("queue lock");
            if own.0 < own.1 {
                let i = own.0;
                own.0 += 1;
                return Some(i);
            }
        }
        let n = self.stripes.len();
        for off in 1..n {
            let victim = (w + off) % n;
            // qlint::allow(PN01, reason = "a poisoned stripe lock means a worker already panicked; propagating is correct")
            let mut g = self.stripes[victim].lock().expect("queue lock");
            if g.0 < g.1 {
                g.1 -= 1;
                return Some(g.1);
            }
        }
        None
    }
}

/// Default worker count for a sweep: every available core.
#[must_use]
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Applies `f` to every item on `workers` threads and returns the
/// results **in item order**, whatever order the threads ran in.
///
/// Work is distributed by stealing: each worker drains its own stripe of
/// the index space and then takes cells from the back of the next
/// non-empty neighbour's stripe, so a stripe of slow cells (e.g. the
/// 5-minute game sessions) cannot serialise the sweep.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        return items.iter().map(f).collect();
    }

    let queue = StripeQueue::new(n, workers);
    let collected: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    while let Some(i) = queue.next(w) {
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // qlint::allow(PN01, reason = "re-raising a worker panic on the caller's thread, not swallowing it")
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in collected.into_iter().flatten() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        // qlint::allow(PN01, reason = "the stripe queue hands out each index exactly once")
        .map(|r| r.expect("every cell ran exactly once"))
        .collect()
}

/// Runs `cells` on `workers` threads with a caller-supplied evaluator
/// and returns one row per cell, in cell order.
pub fn run_cells<F>(cells: &[SweepCell], workers: usize, eval: F) -> Vec<SweepRow>
where
    F: Fn(&SweepCell) -> Summary + Sync,
{
    let summaries = parallel_map(cells, workers, eval);
    cells
        .iter()
        .cloned()
        .zip(summaries)
        .map(|(cell, summary)| SweepRow { cell, summary })
        .collect()
}

/// The stock cell evaluator: measures any governor this workspace ships
/// on a fresh, deterministically seeded device.
///
/// `next` cells need a trained agent; [`StandardEvaluator::prepare`]
/// trains one table per app up front (itself in parallel) so each `next`
/// cell only pays a table clone, and repeated seeds of the same app
/// reuse the same trained policy — the paper's train-once / measure-many
/// protocol.
#[derive(Debug)]
pub struct StandardEvaluator {
    tables: BTreeMap<String, TrainedApp>,
    preset: PlatformPreset,
}

/// A per-app trained Next policy plus its training telemetry.
#[derive(Debug, Clone)]
struct TrainedApp {
    table: DenseQTable,
    telemetry: TrainTelemetry,
}

/// Training telemetry for one app, kept for report footers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainTelemetry {
    /// Simulated seconds of training actually spent.
    pub training_time_s: f64,
    /// Whether the TD-error convergence criterion fired.
    pub converged: bool,
    /// Number of visited states in the trained table.
    pub states: usize,
}

impl StandardEvaluator {
    /// Every governor name the evaluator accepts.
    pub const GOVERNORS: [&'static str; 6] = [
        "schedutil",
        "intqos",
        "next",
        "performance",
        "powersave",
        "ondemand",
    ];

    /// Training seed for the per-app Next tables (the bench protocol's
    /// dedicated training device).
    pub const TRAIN_SEED: u64 = 7;

    /// The §V base training budget per app, simulated seconds.
    pub const BASE_TRAIN_BUDGET_S: f64 = 600.0;

    /// The training budget for `app` given a base budget: games get
    /// twice the base (their FPS spans the whole 0–60 range, so they
    /// explore a much larger state region).
    #[must_use]
    pub fn train_budget_for(base_budget_s: f64, app: &str) -> f64 {
        if apps::is_game(app) {
            2.0 * base_budget_s
        } else {
            base_budget_s
        }
    }

    /// Prepares an evaluator for `cells` on the paper's stock Exynos
    /// 9810 (see [`StandardEvaluator::prepare_on`]).
    #[must_use]
    pub fn prepare(cells: &[SweepCell], train_budget_s: f64, workers: usize) -> Self {
        Self::prepare_on(cells, train_budget_s, workers, PlatformPreset::exynos9810())
    }

    /// Prepares an evaluator for `cells` on a platform preset: trains a
    /// Next table for every distinct app that appears in a `next` cell,
    /// running the training jobs themselves on `workers` threads. Every
    /// cell — training and measurement — runs on the preset's device.
    ///
    /// `train_budget_s` is the per-app base training budget in
    /// simulated seconds (see [`StandardEvaluator::train_budget_for`]).
    #[must_use]
    pub fn prepare_on(
        cells: &[SweepCell],
        train_budget_s: f64,
        workers: usize,
        preset: PlatformPreset,
    ) -> Self {
        let mut train_apps: Vec<String> = cells
            .iter()
            .filter(|c| c.governor == "next")
            .map(|c| c.app.clone())
            .collect();
        train_apps.sort();
        train_apps.dedup();

        let outcomes = Self::train_for_apps(&train_apps, train_budget_s, workers, &preset);
        let tables = outcomes.into_iter().map(|out| {
            let table = out.agent.into_table();
            let telemetry = TrainTelemetry {
                training_time_s: out.training_time_s,
                converged: out.converged,
                states: table.len(),
            };
            TrainedApp { table, telemetry }
        });
        StandardEvaluator {
            tables: train_apps.into_iter().zip(tables).collect(),
            preset,
        }
    }

    /// Trains one Next policy per app (in order), in parallel, on the
    /// preset's device with the protocol seed and per-app budget — the
    /// §V train-once fan-out shared by this evaluator and the day
    /// engine, so the two layers cannot train differently.
    #[must_use]
    pub fn train_for_apps(
        apps: &[String],
        base_budget_s: f64,
        workers: usize,
        preset: &PlatformPreset,
    ) -> Vec<crate::trainer::TrainOutcome> {
        let trainer = Trainer::new();
        parallel_map(apps, workers, |app| {
            let budget = Self::train_budget_for(base_budget_s, app);
            let spec = TrainSpec::new(app, preset.next.clone(), Self::TRAIN_SEED, budget)
                .with_soc(preset.soc.clone());
            trainer.train(spec)
        })
    }

    /// The platform preset this evaluator measures on.
    #[must_use]
    pub fn preset(&self) -> &PlatformPreset {
        &self.preset
    }

    /// Training telemetry for `app`, if a Next table was trained for it.
    #[must_use]
    pub fn telemetry(&self, app: &str) -> Option<TrainTelemetry> {
        self.tables.get(app).map(|t| t.telemetry)
    }

    /// Evaluates one cell. Pure: identical cells give identical
    /// summaries regardless of which thread runs them, or when.
    ///
    /// # Panics
    ///
    /// Panics on an unknown governor name or a `next` cell whose app was
    /// not covered by [`StandardEvaluator::prepare`].
    #[must_use]
    pub fn eval(&self, cell: &SweepCell) -> Summary {
        let plan = SessionPlan::single(&cell.app, cell.duration_s);
        let mut governor: Box<dyn Governor> = if cell.governor == "next" {
            let table = self
                .tables
                .get(&cell.app)
                // qlint::allow(PN01, reason = "prepare_on trained a table for every app in the grid")
                .unwrap_or_else(|| panic!("no trained table for app '{}'", cell.app))
                .table
                .clone();
            Box::new(NextAgent::with_table(
                self.preset.next.clone(),
                table,
                false,
            ))
        } else {
            governors::by_name(&cell.governor)
                // qlint::allow(PN01, reason = "documented panicking lookup; grid cells are built from validated names")
                .unwrap_or_else(|| panic!("unknown governor '{}'", cell.governor))
        };
        evaluate_governor_on(governor.as_mut(), &plan, cell.seed, &self.preset.soc).summary
    }
}

/// Renders sweep rows as a deterministic plain-text report: one aligned
/// table sorted by (app, governor, seed), then per-governor mean power
/// with savings versus `schedutil` where both were measured.
///
/// The output is byte-identical for a given row set — it carries no
/// wall-clock times, worker counts or any other run-dependent data.
#[must_use]
pub fn report(rows: &[SweepRow]) -> String {
    let mut sorted: Vec<&SweepRow> = rows.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.cell.app, &a.cell.governor, a.cell.seed).cmp(&(
            &b.cell.app,
            &b.cell.governor,
            b.cell.seed,
        ))
    });

    let mut table = Table::new(
        "sweep: governor x app x seed",
        &[
            "app",
            "governor",
            "seed",
            "dur_s",
            "avg_w",
            "peak_w",
            "avg_fps",
            "fps_std",
            "peak_big_c",
            "peak_dev_c",
            "energy_j",
        ],
    );
    for row in &sorted {
        let s = &row.summary;
        table.push_row(vec![
            row.cell.app.clone(),
            row.cell.governor.clone(),
            row.cell.seed.to_string(),
            format!("{:.0}", row.cell.duration_s),
            format!("{:.3}", s.avg_power_w),
            format!("{:.3}", s.peak_power_w),
            format!("{:.2}", s.avg_fps),
            format!("{:.2}", s.fps_std),
            format!("{:.2}", s.peak_temp_hot_c),
            format!("{:.2}", s.peak_temp_device_c),
            format!("{:.1}", s.energy_j),
        ]);
    }
    let mut out = table.render();

    // Per-governor aggregate: mean of per-cell average power, and the
    // mean saving versus the schedutil cell with the same (app, seed).
    let mut by_gov: BTreeMap<&str, Vec<&SweepRow>> = BTreeMap::new();
    for row in &sorted {
        by_gov.entry(&row.cell.governor).or_default().push(row);
    }
    let sched_power: BTreeMap<(&str, u64), f64> = sorted
        .iter()
        .filter(|r| r.cell.governor == "schedutil")
        .map(|r| ((r.cell.app.as_str(), r.cell.seed), r.summary.avg_power_w))
        .collect();
    out.push('\n');
    for (gov, rows) in &by_gov {
        let mean_w = rows.iter().map(|r| r.summary.avg_power_w).sum::<f64>() / rows.len() as f64;
        let savings: Vec<f64> = rows
            .iter()
            .filter_map(|r| {
                sched_power
                    .get(&(r.cell.app.as_str(), r.cell.seed))
                    .map(|&base| (1.0 - r.summary.avg_power_w / base) * 100.0)
            })
            .collect();
        if *gov == "schedutil" || savings.is_empty() {
            let _ = writeln!(
                out,
                "# {gov}: mean power {mean_w:.3} W over {} cells",
                rows.len()
            );
        } else {
            let mean_saving = savings.iter().sum::<f64>() / savings.len() as f64;
            let _ = writeln!(
                out,
                "# {gov}: mean power {mean_w:.3} W over {} cells, mean saving vs schedutil {mean_saving:.1} %",
                rows.len()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_app_major_and_sized() {
        let cells = grid(
            &["facebook".into(), "spotify".into()],
            &["schedutil".into(), "powersave".into()],
            &[1, 2, 3],
            Some(10.0),
        );
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].app, "facebook");
        assert_eq!(cells[0].governor, "schedutil");
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[11].app, "spotify");
        assert_eq!(cells[11].governor, "powersave");
        assert_eq!(cells[11].seed, 3);
    }

    #[test]
    fn grid_defaults_to_paper_session_lengths() {
        let cells = grid(&["pubg".into()], &["schedutil".into()], &[1], None);
        assert!((cells[0].duration_s - 300.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..203).collect();
        let doubled = parallel_map(&items, 7, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], 4, |&x| x + 1), vec![6]);
    }

    #[test]
    fn parallel_map_balances_skewed_work() {
        // Front-loaded stripe: worker 0 would own all the heavy items
        // under static partitioning; stealing must still complete and
        // preserve order.
        let items: Vec<u64> = (0..64)
            .map(|i| if i < 8 { 2_000_000 } else { 10 })
            .collect();
        let spin = |&n: &u64| -> u64 {
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(i ^ acc.rotate_left(7));
            }
            acc
        };
        assert_eq!(
            parallel_map(&items, 8, spin),
            items.iter().map(spin).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stripe_queue_hands_out_every_index_once() {
        let q = StripeQueue::new(10, 3);
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.next(1)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn standard_evaluator_is_pure_per_cell() {
        let cell = SweepCell {
            app: "facebook".into(),
            governor: "schedutil".into(),
            seed: 42,
            duration_s: 10.0,
        };
        let eval = StandardEvaluator::prepare(std::slice::from_ref(&cell), 30.0, 1);
        assert_eq!(eval.eval(&cell), eval.eval(&cell));
    }

    #[test]
    fn report_sorts_rows_regardless_of_input_order() {
        let mk = |app: &str, gov: &str, seed| SweepRow {
            cell: SweepCell {
                app: app.into(),
                governor: gov.into(),
                seed,
                duration_s: 10.0,
            },
            summary: Summary {
                avg_power_w: 1.0,
                ..Summary::default()
            },
        };
        let fwd = vec![mk("a", "next", 1), mk("b", "schedutil", 1)];
        let rev = vec![mk("b", "schedutil", 1), mk("a", "next", 1)];
        assert_eq!(report(&fwd), report(&rev));
    }
}
