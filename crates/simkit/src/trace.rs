//! Compact per-tick trace recording, a dep-free binary codec, and
//! divergence bisect.
//!
//! Determinism is this workspace's load-bearing invariant: every run is
//! a pure function of its spec, pinned byte-for-byte across scalar and
//! batched stepping and across worker counts. This module *exploits*
//! that. A [`TraceSink`] hooks the engine's tick loop and records one
//! [`TickRecord`] per 25 ms base tick — per-domain frequency levels,
//! node temperatures, the governor's chosen action and reward, the
//! rolling FPS-window sample, battery drain, and which session or gap
//! the tick belongs to. [`TickTrace::encode`]/[`TickTrace::decode`]
//! give the trace a versioned binary form (see `docs/TRACE_FORMAT.md`)
//! with no dependencies, in the spirit of `bench::json`.
//!
//! On top of the codec:
//!
//! * **replay** — [`crate::day::replay_day`] re-executes a recorded
//!   day from the trace's [`TraceMeta`] alone and the CLI
//!   (`next-sim replay`) asserts byte-identity against the original
//!   file,
//! * **bisect** — [`bisect`] compares two traces of the same scenario
//!   and pinpoints the first divergent tick with a field-level diff,
//! * **reports** — `bench::report` renders a recorded day as a
//!   self-contained HTML viewer.
//!
//! Recording is strictly opt-in: the engine entry points take any
//! [`TraceSink`] and the default [`NullSink`] is a zero-sized type
//! whose `enabled()` returns `false`, so the monomorphised tick loop
//! contains no recording code at all when tracing is off.
//!
//! # Example
//!
//! ```
//! use simkit::trace::{bisect, TickRecord, TickTrace, TraceMeta, SegmentKind};
//!
//! // A two-tick trace (metadata names a quick gamer day, 3 domains).
//! let meta = TraceMeta::example();
//! let mut records = vec![TickRecord::idle(0.025, SegmentKind::Gap, 0, 3); 2];
//! records[1].time_s = 0.050;
//! let trace = TickTrace { meta, records };
//!
//! // The binary codec round-trips exactly.
//! let bytes = trace.encode();
//! let back = TickTrace::decode(&bytes).unwrap();
//! assert_eq!(back, trace);
//!
//! // Bisect pinpoints the first divergent tick, field by field.
//! let mut perturbed = trace.clone();
//! perturbed.records[1].fps = 60.0;
//! let report = bisect(&trace, &perturbed);
//! let divergence = report.divergence.unwrap();
//! assert_eq!(divergence.tick, 1);
//! assert_eq!(divergence.fields[0].field, "fps");
//! ```

use std::fmt;

use governors::ControlDecision;
use mpsoc::soc::SocState;
use workload::DayPlanConfig;

use crate::metrics::Battery;

/// Format version written by [`TickTrace::encode`]; decode rejects
/// anything else (see `docs/TRACE_FORMAT.md` for the versioning rules).
pub const TRACE_VERSION: u16 = 1;

/// Magic bytes opening every trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"NXTR";

/// Scenario discriminator: a battery-day run (currently the only
/// recorded scenario).
pub const SCENARIO_DAY: u8 = 1;

/// Wire value of "no explicit action this tick".
const ACTION_NONE: u16 = u16::MAX;

/// What kind of day segment a tick belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Screen-off gap (idle ticking, no governor).
    Gap,
    /// Screen-on session (a real engine run under the governor).
    Session,
}

/// One engine tick as seen by a [`TraceSink`]: the pre-control state
/// snapshot, the tick length, and — on control ticks — the governor's
/// decision.
#[derive(Debug, Clone, Copy)]
pub struct TickView<'a> {
    /// Observable SoC state at the tick (the snapshot the governor saw).
    pub state: &'a SocState,
    /// Tick length in seconds (gap ticks may be shorter than the
    /// configured gap tick at a segment boundary).
    pub dt_s: f64,
    /// The governor's decision, present only on ticks where `control`
    /// ran and the governor exposes one.
    pub decision: Option<ControlDecision>,
}

/// Hook the engine tick loops call once per tick. Implementations that
/// return `false` from [`TraceSink::enabled`] cost nothing: the engine
/// branches on it before assembling a [`TickView`], and for the
/// zero-sized [`NullSink`] the branch folds away entirely.
pub trait TraceSink {
    /// Whether this sink records anything at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Announces the start of a day segment (`index` = pickup index;
    /// the tail gap uses the pickup count). Default: ignored.
    fn begin_segment(&mut self, kind: SegmentKind, index: usize) {
        let _ = (kind, index);
    }

    /// Records one tick.
    fn record(&mut self, view: &TickView<'_>);
}

/// The disabled sink: records nothing, zero-sized, `enabled() == false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _view: &TickView<'_>) {}
}

/// Everything needed to *regenerate* a recorded day from scratch — the
/// replay contract: the day engine is deterministic, so `(platform,
/// governor, persona, plan config, seed, budgets, battery)` pins every
/// recorded byte.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Platform preset name (resolves via
    /// [`crate::platform::PlatformPreset::by_name`]).
    pub platform: String,
    /// Governor name (see [`crate::sweep::StandardEvaluator::GOVERNORS`]).
    pub governor: String,
    /// Persona name the day plan was generated for.
    pub persona: String,
    /// Day-plan generation seed.
    pub seed: u64,
    /// Day-plan shape (pickups, day length, session scaling).
    pub plan: DayPlanConfig,
    /// Screen-off gap tick length, seconds.
    pub gap_tick_s: f64,
    /// Base training budget for first-use Q-table training, seconds.
    pub train_budget_s: f64,
    /// Battery pack drain is reported against.
    pub battery: Battery,
    /// Engine base tick, seconds.
    pub tick_s: f64,
    /// DVFS-domain count of the platform (sizes every record).
    pub n_domains: u8,
}

impl TraceMeta {
    /// A small, valid metadata block (quick gamer day under schedutil
    /// on the default platform) for examples and tests.
    #[must_use]
    pub fn example() -> Self {
        TraceMeta {
            platform: "exynos9810".to_owned(),
            governor: "schedutil".to_owned(),
            persona: "gamer".to_owned(),
            seed: 7,
            plan: DayPlanConfig::quick(),
            gap_tick_s: 1.0,
            train_budget_s: 120.0,
            battery: Battery::note9(),
            tick_s: 0.025,
            n_domains: 3,
        }
    }
}

/// One recorded tick. Fixed-size on the wire (`37 + 5·n_domains`
/// bytes); floats narrowed to `f32` where sensor precision allows —
/// only `time_s` keeps full width, since a 16 h day at 25 ms ticks
/// exceeds `f32` resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct TickRecord {
    /// Simulated day time, seconds.
    pub time_s: f64,
    /// Segment the tick belongs to.
    pub kind: SegmentKind,
    /// Pickup index of the segment (tail gap = pickup count).
    pub pickup: u16,
    /// Governor action index, when the tick's control step exposed one.
    pub action: Option<u16>,
    /// Reward of the control step (0 when `action` is `None`).
    pub reward: f32,
    /// Rolling FPS-window sample (≈0.5 s window).
    pub fps: f32,
    /// Platform power over the tick, watts.
    pub power_w: f32,
    /// Cumulative battery drain at the tick, percent of the pack.
    pub battery_pct: f32,
    /// Virtual device sensor temperature, °C.
    pub temp_device_c: f32,
    /// Battery/board sensor temperature, °C.
    pub temp_battery_c: f32,
    /// OPP level per domain, in platform order.
    pub freq_level: Vec<u8>,
    /// Die sensor temperature per domain, °C, in platform order.
    pub temp_domain_c: Vec<f32>,
}

impl TickRecord {
    /// An all-idle record for examples and tests (`n_domains` sized).
    #[must_use]
    pub fn idle(time_s: f64, kind: SegmentKind, pickup: u16, n_domains: usize) -> Self {
        TickRecord {
            time_s,
            kind,
            pickup,
            action: None,
            reward: 0.0,
            fps: 0.0,
            power_w: 0.1,
            battery_pct: 0.0,
            temp_device_c: 25.0,
            temp_battery_c: 25.0,
            freq_level: vec![0; n_domains],
            temp_domain_c: vec![25.0; n_domains],
        }
    }

    /// Wire size of one record for a given domain count.
    #[must_use]
    pub fn wire_size(n_domains: usize) -> usize {
        37 + 5 * n_domains
    }
}

/// A recorded run: metadata plus the per-tick records.
#[derive(Debug, Clone, PartialEq)]
pub struct TickTrace {
    /// The regeneration recipe.
    pub meta: TraceMeta,
    /// One record per engine tick, in time order.
    pub records: Vec<TickRecord>,
}

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Unknown scenario discriminator.
    BadScenario(u8),
    /// Domain count outside `1..=`[`mpsoc::platform::MAX_DOMAINS`].
    BadDomains(u8),
    /// A length-prefixed string is not valid UTF-8.
    BadString,
    /// The buffer ends before the declared content does.
    Truncated,
    /// Bytes remain after the declared records.
    TrailingBytes(usize),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (expected {TRACE_VERSION})"
                )
            }
            TraceError::BadScenario(s) => write!(f, "unknown scenario discriminator {s}"),
            TraceError::BadDomains(n) => write!(f, "implausible domain count {n}"),
            TraceError::BadString => write!(f, "metadata string is not valid UTF-8"),
            TraceError::Truncated => write!(f, "trace file is truncated"),
            TraceError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after the declared records")
            }
        }
    }
}

impl std::error::Error for TraceError {}

// --- little-endian wire helpers -------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes a `u16`-length-prefixed UTF-8 string.
///
/// # Panics
///
/// Panics when the string exceeds 65535 bytes (metadata names never
/// approach this).
fn put_str(out: &mut Vec<u8>, s: &str) {
    // qlint::allow(PN01, reason = "documented panic; metadata strings are short app/governor names")
    let len = u16::try_from(s.len()).expect("metadata string fits u16 length");
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::Truncated)?;
        if end > self.buf.len() {
            return Err(TraceError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(
            // qlint::allow(PN01, reason = "take(2) returned exactly 2 bytes")
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(
            // qlint::allow(PN01, reason = "take(4) returned exactly 4 bytes")
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(
            // qlint::allow(PN01, reason = "take(8) returned exactly 8 bytes")
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32(&mut self) -> Result<f32, TraceError> {
        Ok(f32::from_le_bytes(
            // qlint::allow(PN01, reason = "take(4) returned exactly 4 bytes")
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, TraceError> {
        Ok(f64::from_le_bytes(
            // qlint::allow(PN01, reason = "take(8) returned exactly 8 bytes")
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String, TraceError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| TraceError::BadString)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl TickTrace {
    /// Serialises the trace to its binary form (see
    /// `docs/TRACE_FORMAT.md`). Deterministic: identical traces encode
    /// to identical bytes — the property `next-sim replay` asserts.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let m = &self.meta;
        let n_domains = m.n_domains as usize;
        let mut out =
            Vec::with_capacity(128 + self.records.len() * TickRecord::wire_size(n_domains));
        out.extend_from_slice(&TRACE_MAGIC);
        put_u16(&mut out, TRACE_VERSION);
        out.push(SCENARIO_DAY);
        out.push(m.n_domains);
        put_f64(&mut out, m.tick_s);
        put_str(&mut out, &m.platform);
        put_str(&mut out, &m.governor);
        put_str(&mut out, &m.persona);
        put_u64(&mut out, m.seed);
        put_u32(&mut out, m.plan.pickups);
        put_f64(&mut out, m.plan.day_length_s);
        put_f64(&mut out, m.plan.session_scale);
        put_f64(&mut out, m.plan.min_session_s);
        put_f64(&mut out, m.gap_tick_s);
        put_f64(&mut out, m.train_budget_s);
        put_f64(&mut out, m.battery.capacity_mah);
        put_f64(&mut out, m.battery.nominal_v);
        put_u64(&mut out, self.records.len() as u64);
        for r in &self.records {
            debug_assert_eq!(
                r.freq_level.len(),
                n_domains,
                "record/metadata domain mismatch"
            );
            put_f64(&mut out, r.time_s);
            out.push(match r.kind {
                SegmentKind::Gap => 0,
                SegmentKind::Session => 1,
            });
            put_u16(&mut out, r.pickup);
            put_u16(&mut out, r.action.unwrap_or(ACTION_NONE));
            put_f32(&mut out, r.reward);
            put_f32(&mut out, r.fps);
            put_f32(&mut out, r.power_w);
            put_f32(&mut out, r.battery_pct);
            put_f32(&mut out, r.temp_device_c);
            put_f32(&mut out, r.temp_battery_c);
            out.extend_from_slice(&r.freq_level);
            for &t in &r.temp_domain_c {
                put_f32(&mut out, t);
            }
        }
        out
    }

    /// Parses a binary trace.
    ///
    /// # Errors
    ///
    /// Rejects wrong magic/version/scenario, implausible domain counts,
    /// malformed strings, truncation, and trailing bytes — a valid
    /// result always re-encodes to exactly the input.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = r.u16()?;
        if version != TRACE_VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let scenario = r.u8()?;
        if scenario != SCENARIO_DAY {
            return Err(TraceError::BadScenario(scenario));
        }
        let n_domains = r.u8()?;
        if n_domains == 0 || usize::from(n_domains) > mpsoc::platform::MAX_DOMAINS {
            return Err(TraceError::BadDomains(n_domains));
        }
        let tick_s = r.f64()?;
        let platform = r.str()?;
        let governor = r.str()?;
        let persona = r.str()?;
        let seed = r.u64()?;
        let plan = DayPlanConfig {
            pickups: r.u32()?,
            day_length_s: r.f64()?,
            session_scale: r.f64()?,
            min_session_s: r.f64()?,
        };
        let gap_tick_s = r.f64()?;
        let train_budget_s = r.f64()?;
        let battery = Battery {
            capacity_mah: r.f64()?,
            nominal_v: r.f64()?,
        };
        let count = r.u64()?;
        let nd = usize::from(n_domains);
        let rec_size = TickRecord::wire_size(nd);
        let expected = count
            .checked_mul(rec_size as u64)
            .ok_or(TraceError::Truncated)?;
        let remaining = r.remaining() as u64;
        if remaining < expected {
            return Err(TraceError::Truncated);
        }
        if remaining > expected {
            #[allow(clippy::cast_possible_truncation)]
            return Err(TraceError::TrailingBytes((remaining - expected) as usize));
        }
        #[allow(clippy::cast_possible_truncation)]
        let mut records = Vec::with_capacity(count as usize);
        for _ in 0..count {
            records.push(Self::decode_record(&mut r, nd)?);
        }
        Ok(TickTrace {
            meta: TraceMeta {
                platform,
                governor,
                persona,
                seed,
                plan,
                gap_tick_s,
                train_budget_s,
                battery,
                tick_s,
                n_domains,
            },
            records,
        })
    }

    /// Parses one fixed-size tick record for an `nd`-domain platform.
    fn decode_record(r: &mut Reader<'_>, nd: usize) -> Result<TickRecord, TraceError> {
        let time_s = r.f64()?;
        let kind = match r.u8()? {
            0 => SegmentKind::Gap,
            _ => SegmentKind::Session,
        };
        let pickup = r.u16()?;
        let action = match r.u16()? {
            ACTION_NONE => None,
            a => Some(a),
        };
        let reward = r.f32()?;
        let fps = r.f32()?;
        let power_w = r.f32()?;
        let battery_pct = r.f32()?;
        let temp_device_c = r.f32()?;
        let temp_battery_c = r.f32()?;
        let freq_level = r.take(nd)?.to_vec();
        let mut temp_domain_c = Vec::with_capacity(nd);
        for _ in 0..nd {
            temp_domain_c.push(r.f32()?);
        }
        Ok(TickRecord {
            time_s,
            kind,
            pickup,
            action,
            reward,
            fps,
            power_w,
            battery_pct,
            temp_device_c,
            temp_battery_c,
            freq_level,
            temp_domain_c,
        })
    }
}

/// A [`TraceSink`] that accumulates [`TickRecord`]s and the running
/// battery drain for one device lane.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    meta: TraceMeta,
    records: Vec<TickRecord>,
    energy_j: f64,
    segment: (SegmentKind, u16),
}

impl TraceRecorder {
    /// Creates a recorder for one run described by `meta`.
    #[must_use]
    pub fn new(meta: TraceMeta) -> Self {
        TraceRecorder {
            meta,
            records: Vec::new(),
            energy_j: 0.0,
            segment: (SegmentKind::Gap, 0),
        }
    }

    /// Consumes the recorder, yielding the finished trace.
    #[must_use]
    pub fn finish(self) -> TickTrace {
        TickTrace {
            meta: self.meta,
            records: self.records,
        }
    }
}

impl TraceSink for TraceRecorder {
    fn begin_segment(&mut self, kind: SegmentKind, index: usize) {
        self.segment = (kind, u16::try_from(index).unwrap_or(u16::MAX));
    }

    #[allow(clippy::cast_possible_truncation)]
    fn record(&mut self, view: &TickView<'_>) {
        let state = view.state;
        debug_assert_eq!(
            state.freq_level.len(),
            usize::from(self.meta.n_domains),
            "recorder metadata does not match the platform"
        );
        self.energy_j += state.power_w * view.dt_s;
        self.records.push(TickRecord {
            time_s: state.time_s,
            kind: self.segment.0,
            pickup: self.segment.1,
            action: view.decision.map(|d| d.action),
            reward: view.decision.map_or(0.0, |d| d.reward as f32),
            fps: state.fps as f32,
            power_w: state.power_w as f32,
            battery_pct: self.meta.battery.drain_percent(self.energy_j) as f32,
            temp_device_c: state.temp_device_c as f32,
            temp_battery_c: state.temp_battery_c as f32,
            freq_level: state.freq_level.iter().map(|&l| l as u8).collect(),
            temp_domain_c: state.temp_domain_c.iter().map(|&t| t as f32).collect(),
        });
    }
}

// --- bisect ----------------------------------------------------------

/// One differing field, rendered as strings for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDiff {
    /// Field name.
    pub field: &'static str,
    /// Value in the first trace.
    pub a: String,
    /// Value in the second trace.
    pub b: String,
}

/// The first tick at which two traces disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Tick index (0-based) of the first disagreement.
    pub tick: usize,
    /// Simulated time of that tick in the first trace (or the second,
    /// when the first ended early).
    pub time_s: f64,
    /// The differing fields at that tick; empty when the divergence is
    /// one trace ending early.
    pub fields: Vec<FieldDiff>,
}

/// Outcome of comparing two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct BisectReport {
    /// Metadata fields that differ (two traces of *different* scenarios
    /// still bisect, but the meta diff is reported first).
    pub meta_diffs: Vec<FieldDiff>,
    /// Record count of the first trace.
    pub len_a: usize,
    /// Record count of the second trace.
    pub len_b: usize,
    /// The first divergent tick, or `None` when all shared records (and
    /// lengths) agree.
    pub divergence: Option<Divergence>,
}

impl BisectReport {
    /// Whether the traces are fully identical (metadata and records).
    #[must_use]
    pub fn is_identical(&self) -> bool {
        self.meta_diffs.is_empty() && self.divergence.is_none()
    }

    /// Human-readable multi-line rendering (the `next-sim bisect`
    /// output).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.meta_diffs {
            let _ = writeln!(out, "meta {}: {} != {}", d.field, d.a, d.b);
        }
        if self.len_a != self.len_b {
            let _ = writeln!(out, "length: {} != {} records", self.len_a, self.len_b);
        }
        match &self.divergence {
            None => {
                let _ = writeln!(out, "records identical ({} ticks)", self.len_a);
            }
            Some(div) => {
                let _ = writeln!(
                    out,
                    "first divergence at tick {} (t = {:.3} s):",
                    div.tick, div.time_s
                );
                if div.fields.is_empty() {
                    let _ = writeln!(out, "  one trace ends here");
                }
                for d in &div.fields {
                    let _ = writeln!(out, "  {}: {} != {}", d.field, d.a, d.b);
                }
            }
        }
        out
    }
}

fn diff_field<T: PartialEq + fmt::Debug>(
    out: &mut Vec<FieldDiff>,
    field: &'static str,
    a: &T,
    b: &T,
) {
    if a != b {
        out.push(FieldDiff {
            field,
            a: format!("{a:?}"),
            b: format!("{b:?}"),
        });
    }
}

fn diff_meta(a: &TraceMeta, b: &TraceMeta) -> Vec<FieldDiff> {
    let mut out = Vec::new();
    diff_field(&mut out, "platform", &a.platform, &b.platform);
    diff_field(&mut out, "governor", &a.governor, &b.governor);
    diff_field(&mut out, "persona", &a.persona, &b.persona);
    diff_field(&mut out, "seed", &a.seed, &b.seed);
    diff_field(&mut out, "plan.pickups", &a.plan.pickups, &b.plan.pickups);
    diff_field(
        &mut out,
        "plan.day_length_s",
        &a.plan.day_length_s,
        &b.plan.day_length_s,
    );
    diff_field(
        &mut out,
        "plan.session_scale",
        &a.plan.session_scale,
        &b.plan.session_scale,
    );
    diff_field(
        &mut out,
        "plan.min_session_s",
        &a.plan.min_session_s,
        &b.plan.min_session_s,
    );
    diff_field(&mut out, "gap_tick_s", &a.gap_tick_s, &b.gap_tick_s);
    diff_field(
        &mut out,
        "train_budget_s",
        &a.train_budget_s,
        &b.train_budget_s,
    );
    diff_field(&mut out, "battery", &a.battery, &b.battery);
    diff_field(&mut out, "tick_s", &a.tick_s, &b.tick_s);
    diff_field(&mut out, "n_domains", &a.n_domains, &b.n_domains);
    out
}

fn diff_record(a: &TickRecord, b: &TickRecord) -> Vec<FieldDiff> {
    let mut out = Vec::new();
    diff_field(&mut out, "time_s", &a.time_s, &b.time_s);
    diff_field(&mut out, "kind", &a.kind, &b.kind);
    diff_field(&mut out, "pickup", &a.pickup, &b.pickup);
    diff_field(&mut out, "action", &a.action, &b.action);
    diff_field(&mut out, "reward", &a.reward, &b.reward);
    diff_field(&mut out, "fps", &a.fps, &b.fps);
    diff_field(&mut out, "power_w", &a.power_w, &b.power_w);
    diff_field(&mut out, "battery_pct", &a.battery_pct, &b.battery_pct);
    diff_field(
        &mut out,
        "temp_device_c",
        &a.temp_device_c,
        &b.temp_device_c,
    );
    diff_field(
        &mut out,
        "temp_battery_c",
        &a.temp_battery_c,
        &b.temp_battery_c,
    );
    diff_field(&mut out, "freq_level", &a.freq_level, &b.freq_level);
    diff_field(
        &mut out,
        "temp_domain_c",
        &a.temp_domain_c,
        &b.temp_domain_c,
    );
    out
}

/// Finds the first tick at which two traces diverge, with a
/// field-level diff — the debugging tool for governor or kernel
/// changes that break a byte-identity fixture: record a trace before
/// and after the change and bisect them instead of eyeballing JSON
/// summaries.
///
/// Metadata differences are reported separately; when one trace is a
/// strict prefix of the other, the divergence points just past the
/// shared prefix with an empty field list.
#[must_use]
pub fn bisect(a: &TickTrace, b: &TickTrace) -> BisectReport {
    let meta_diffs = diff_meta(&a.meta, &b.meta);
    let len_a = a.records.len();
    let len_b = b.records.len();
    let shared = len_a.min(len_b);
    let mut divergence = None;
    for i in 0..shared {
        let fields = diff_record(&a.records[i], &b.records[i]);
        if !fields.is_empty() {
            divergence = Some(Divergence {
                tick: i,
                time_s: a.records[i].time_s,
                fields,
            });
            break;
        }
    }
    if divergence.is_none() && len_a != len_b {
        let time_s = if len_a > shared {
            a.records[shared].time_s
        } else {
            b.records[shared].time_s
        };
        divergence = Some(Divergence {
            tick: shared,
            time_s,
            fields: Vec::new(),
        });
    }
    BisectReport {
        meta_diffs,
        len_a,
        len_b,
        divergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tick_trace() -> TickTrace {
        let meta = TraceMeta::example();
        let mut r0 = TickRecord::idle(0.025, SegmentKind::Gap, 0, 3);
        r0.battery_pct = 0.001;
        let mut r1 = TickRecord::idle(0.050, SegmentKind::Session, 1, 3);
        r1.action = Some(4);
        r1.reward = 1.5;
        r1.fps = 41.0;
        TickTrace {
            meta,
            records: vec![r0, r1],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let trace = two_tick_trace();
        let bytes = trace.encode();
        assert_eq!(bytes.len(), trace.encode().len(), "deterministic encoding");
        let back = TickTrace::decode(&bytes).expect("own encoding decodes");
        assert_eq!(back, trace);
        assert_eq!(back.encode(), bytes, "decode ∘ encode is a fixpoint");
    }

    #[test]
    fn record_wire_size_matches_encoder() {
        let trace = two_tick_trace();
        let empty = TickTrace {
            meta: trace.meta.clone(),
            records: Vec::new(),
        };
        let per_record = (trace.encode().len() - empty.encode().len()) / trace.records.len();
        assert_eq!(per_record, TickRecord::wire_size(3));
    }

    #[test]
    fn decode_rejects_malformed_input() {
        let trace = two_tick_trace();
        let bytes = trace.encode();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(TickTrace::decode(&bad_magic), Err(TraceError::BadMagic));

        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert_eq!(
            TickTrace::decode(&bad_version),
            Err(TraceError::BadVersion(99))
        );

        let mut bad_scenario = bytes.clone();
        bad_scenario[6] = 7;
        assert_eq!(
            TickTrace::decode(&bad_scenario),
            Err(TraceError::BadScenario(7))
        );

        let mut bad_domains = bytes.clone();
        bad_domains[7] = 200;
        assert_eq!(
            TickTrace::decode(&bad_domains),
            Err(TraceError::BadDomains(200))
        );

        assert_eq!(
            TickTrace::decode(&bytes[..bytes.len() - 1]),
            Err(TraceError::Truncated)
        );
        assert_eq!(TickTrace::decode(&[]), Err(TraceError::Truncated));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            TickTrace::decode(&trailing),
            Err(TraceError::TrailingBytes(1))
        );
    }

    #[test]
    fn null_sink_is_disabled_and_zero_sized() {
        assert!(!NullSink.enabled());
        assert_eq!(std::mem::size_of::<NullSink>(), 0);
    }

    #[test]
    fn bisect_reports_identical_traces_as_identical() {
        let trace = two_tick_trace();
        let report = bisect(&trace, &trace.clone());
        assert!(report.is_identical());
        assert!(report.render().contains("identical"));
    }

    #[test]
    fn bisect_finds_first_divergent_tick_and_field() {
        let a = two_tick_trace();
        let mut b = a.clone();
        b.records[1].fps = 60.0;
        b.records[1].power_w = 9.0;
        let report = bisect(&a, &b);
        assert!(report.meta_diffs.is_empty());
        let div = report.divergence.as_ref().expect("diverges");
        assert_eq!(div.tick, 1);
        let fields: Vec<&str> = div.fields.iter().map(|d| d.field).collect();
        assert_eq!(fields, ["fps", "power_w"]);
        assert!(report.render().contains("tick 1"));
    }

    #[test]
    fn bisect_treats_prefix_as_length_divergence() {
        let a = two_tick_trace();
        let mut b = a.clone();
        b.records.pop();
        let report = bisect(&a, &b);
        let div = report.divergence.as_ref().expect("length divergence");
        assert_eq!(div.tick, 1);
        assert!(div.fields.is_empty());
        assert!(report.render().contains("ends here"));
    }

    #[test]
    fn bisect_reports_meta_differences() {
        let a = two_tick_trace();
        let mut b = a.clone();
        b.meta.governor = "next".to_owned();
        let report = bisect(&a, &b);
        assert_eq!(report.meta_diffs.len(), 1);
        assert_eq!(report.meta_diffs[0].field, "governor");
        assert!(!report.is_identical());
    }
}
