//! Reusable training layer: episode-chunked Q-learning runs with a
//! budget, a convergence stop, and warm starts from a fleet table.
//!
//! The §V protocol trains Next by leaving an app open on a dedicated
//! simulated device while the agent explores: training runs as a
//! sequence of fixed-length episodes (app sessions) until either the
//! TD-error convergence criterion fires or the simulated-time budget
//! is spent. [`Trainer`] owns that loop; the single-device protocol
//! ([`crate::experiment::train_next_for_app`]) and the federated fleet
//! rounds ([`crate::fleet`]) are both thin clients of it — the fleet
//! additionally warm-starts every round from the merged cloud table
//! and trains on per-device SoC bins.

use mpsoc::soc::{Soc, SocConfig};
use mpsoc::SocBatch;
use next_core::{NextAgent, NextConfig};
use qlearn::DenseQTable;
use workload::{SessionPlan, SessionSim};

use crate::batch::BatchLane;
use crate::engine::{Engine, RunOutcome};

/// Result of one training run.
#[derive(Debug)]
pub struct TrainOutcome {
    /// The agent, already switched to greedy inference.
    pub agent: NextAgent,
    /// Simulated seconds of training actually spent.
    pub training_time_s: f64,
    /// Whether the TD-error convergence criterion fired (as opposed to
    /// hitting the training budget).
    pub converged: bool,
}

/// One fully-specified training run: what to train, for how long, on
/// which simulated device, and from which starting table.
#[derive(Debug, Clone)]
pub struct TrainSpec {
    /// Application to train on (must resolve via `workload::apps`).
    pub app: String,
    /// Agent configuration (the agent's exploration seed lives here).
    pub config: NextConfig,
    /// Seed driving the training sessions' user behaviour.
    pub session_seed: u64,
    /// Total simulated-seconds budget.
    pub budget_s: f64,
    /// Episode length, simulated seconds: training is chunked into app
    /// sessions of this length (the paper leaves the app open; 60 s
    /// episodes reproduce the seed protocol).
    pub episode_s: f64,
    /// The simulated device to train on — fleet devices pass their own
    /// SoC power/thermal bin here.
    pub soc: SocConfig,
    /// Warm-start table (e.g. the merged fleet table pushed down from
    /// the cloud); `None` trains from scratch.
    pub warm_start: Option<DenseQTable>,
}

impl TrainSpec {
    /// Spec with the seed protocol's defaults: 60 s episodes on the
    /// stock Exynos 9810, training from scratch.
    #[must_use]
    pub fn new(app: &str, config: NextConfig, session_seed: u64, budget_s: f64) -> Self {
        TrainSpec {
            app: app.to_owned(),
            config,
            session_seed,
            budget_s,
            episode_s: 60.0,
            soc: SocConfig::exynos9810(),
            warm_start: None,
        }
    }

    /// Overrides the episode length.
    ///
    /// # Panics
    ///
    /// Panics unless `episode_s` is positive and finite.
    #[must_use]
    pub fn with_episode_s(mut self, episode_s: f64) -> Self {
        assert!(
            episode_s > 0.0 && episode_s.is_finite(),
            "episode length must be positive"
        );
        self.episode_s = episode_s;
        self
    }

    /// Trains on a specific simulated device (SoC bin).
    #[must_use]
    pub fn with_soc(mut self, soc: SocConfig) -> Self {
        self.soc = soc;
        self
    }

    /// Warm-starts from a previously learned table.
    #[must_use]
    pub fn with_warm_start(mut self, table: DenseQTable) -> Self {
        self.warm_start = Some(table);
        self
    }
}

/// The training loop: runs a [`TrainSpec`] to completion.
#[derive(Debug, Clone, Copy, Default)]
pub struct Trainer {
    engine: Engine,
}

impl Trainer {
    /// Trainer on the paper's 25 ms base tick.
    #[must_use]
    pub fn new() -> Self {
        Trainer {
            engine: Engine::new(),
        }
    }

    /// Runs one training job: episodes of `spec.episode_s` until the
    /// agent converges or the budget is spent, then switches the agent
    /// to greedy inference.
    ///
    /// Deterministic: the outcome is a pure function of the spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec references an unknown application.
    #[must_use]
    pub fn train(&self, spec: TrainSpec) -> TrainOutcome {
        let TrainSpec {
            app,
            config,
            session_seed,
            budget_s,
            episode_s,
            soc,
            warm_start,
        } = spec;
        let mut agent = match warm_start {
            Some(table) => NextAgent::warm_start(config, table),
            None => NextAgent::new(config),
        };
        let mut soc = Soc::new(soc);
        let mut spent = 0.0;
        let mut episode = 0u64;
        // One outcome buffer for the whole training run: each episode
        // reuses the previous episode's trace allocation.
        let mut outcome = RunOutcome {
            trace: crate::metrics::Trace::new(),
            presented_frames: 0,
            repeated_vsyncs: 0,
        };
        while spent < budget_s && !agent.is_converged() {
            let chunk = episode_s.min(budget_s - spent);
            let mut session = SessionSim::new(
                SessionPlan::single(&app, chunk),
                session_seed.wrapping_add(episode),
            );
            agent.start_session();
            self.engine
                .run_into(&mut soc, &mut agent, &mut session, chunk, &mut outcome);
            spent += chunk;
            episode += 1;
        }
        let converged = agent.is_converged();
        let training_time_s = agent.stats().converged_at_s.unwrap_or(spent);
        agent.set_training(false);
        TrainOutcome {
            agent,
            training_time_s,
            converged,
        }
    }

    /// Runs many training jobs in lockstep through the batched
    /// structure-of-arrays kernel, one device lane per spec.
    ///
    /// Outcomes are **bit-identical** to calling [`Trainer::train`] on
    /// each spec: lanes share the episode chunk sequence (the specs'
    /// budgets and episode lengths must match for lockstep), each lane
    /// keeps its own agent, session seed, and SoC bin, and a lane drops
    /// out of the batch at the episode boundary where its scalar run
    /// would have stopped (convergence). Specs that genuinely diverge —
    /// different budgets or episode chunking, or structurally
    /// incompatible SoC bins — fall back to lane-sequential scalar
    /// training.
    ///
    /// # Panics
    ///
    /// Panics if a spec references an unknown application.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn train_batch(&self, specs: Vec<TrainSpec>) -> Vec<TrainOutcome> {
        if specs.len() < 2 {
            return specs.into_iter().map(|s| self.train(s)).collect();
        }
        let lockstep = specs
            .iter()
            .all(|s| s.budget_s == specs[0].budget_s && s.episode_s == specs[0].episode_s);
        let soc_configs: Vec<SocConfig> = specs.iter().map(|s| s.soc.clone()).collect();
        let batch = if lockstep {
            SocBatch::try_from_configs(&soc_configs).ok()
        } else {
            None
        };
        let Some(mut batch) = batch else {
            // Genuinely divergent plans: lane-sequential fallback.
            return specs.into_iter().map(|s| self.train(s)).collect();
        };

        let budget_s = specs[0].budget_s;
        let episode_s = specs[0].episode_s;
        let width = specs.len();
        let mut agents: Vec<NextAgent> = specs
            .iter()
            .map(|s| match &s.warm_start {
                Some(table) => NextAgent::warm_start(s.config.clone(), table.clone()),
                None => NextAgent::new(s.config.clone()),
            })
            .collect();
        // Lane → original spec index (sorted ascending): the batch
        // compacts as lanes converge and drop out.
        let mut lane_spec: Vec<usize> = (0..width).collect();
        // Training reuses run outcomes purely as trace buffers, exactly
        // like the scalar loop — nothing reads them afterwards.
        let mut episode_buf: Vec<RunOutcome> = (0..width)
            .map(|_| RunOutcome {
                trace: crate::metrics::Trace::new(),
                presented_frames: 0,
                repeated_vsyncs: 0,
            })
            .collect();
        let mut spent_at_stop = vec![budget_s; width];
        let mut spent = 0.0;
        let mut episode = 0u64;
        while spent < budget_s && !lane_spec.is_empty() {
            // The scalar loop checks convergence before every episode:
            // converged lanes leave the batch at exactly that boundary.
            let keep: Vec<bool> = lane_spec
                .iter()
                .map(|&si| !agents[si].is_converged())
                .collect();
            if keep.iter().any(|&k| !k) {
                for (slot, &k) in keep.iter().enumerate() {
                    if !k {
                        spent_at_stop[lane_spec[slot]] = spent;
                    }
                }
                batch.retain_lanes(&keep);
                let mut it = keep.iter();
                // qlint::allow(PN01, reason = "keep was sized to the lane count just above")
                lane_spec.retain(|_| *it.next().expect("flag per lane"));
                if lane_spec.is_empty() {
                    break;
                }
            }
            let chunk = episode_s.min(budget_s - spent);
            let mut sessions: Vec<SessionSim> = lane_spec
                .iter()
                .map(|&si| {
                    SessionSim::new(
                        SessionPlan::single(&specs[si].app, chunk),
                        specs[si].session_seed.wrapping_add(episode),
                    )
                })
                .collect();
            let mut lanes: Vec<BatchLane<'_>> = agents
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| lane_spec.binary_search(i).is_ok())
                .map(|(_, a)| a)
                .zip(sessions.iter_mut())
                .map(|(agent, session)| {
                    agent.start_session();
                    BatchLane {
                        governor: agent,
                        session,
                    }
                })
                .collect();
            let n_live = lanes.len();
            self.engine
                .run_lanes_into(&mut batch, &mut lanes, chunk, &mut episode_buf[..n_live]);
            spent += chunk;
            episode += 1;
        }
        // Lanes that ran out the budget stopped at the accumulated
        // `spent` (the same float the scalar loop ends with).
        for &si in &lane_spec {
            spent_at_stop[si] = spent;
        }
        agents
            .into_iter()
            .zip(spent_at_stop)
            .map(|(mut agent, lane_spent)| {
                let converged = agent.is_converged();
                let training_time_s = agent.stats().converged_at_s.unwrap_or(lane_spent);
                agent.set_training(false);
                TrainOutcome {
                    agent,
                    training_time_s,
                    converged,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trainer_matches_seed_protocol_wrapper() {
        // The experiment-layer wrapper is a thin client of the trainer:
        // same spec, same table bytes.
        let direct = Trainer::new().train(TrainSpec::new("facebook", NextConfig::paper(), 3, 90.0));
        let wrapped =
            crate::experiment::train_next_for_app("facebook", NextConfig::paper(), 3, 90.0);
        assert_eq!(
            direct.agent.table().encode(),
            wrapped.agent.table().encode()
        );
        assert_eq!(direct.training_time_s, wrapped.training_time_s);
        assert_eq!(direct.converged, wrapped.converged);
    }

    #[test]
    fn warm_start_resumes_from_the_given_table() {
        let cold = Trainer::new().train(TrainSpec::new("spotify", NextConfig::paper(), 5, 60.0));
        let states_before = cold.agent.table().len();
        let visits_before = cold.agent.table().total_visits();
        assert!(states_before > 0);

        let warm = Trainer::new().train(
            TrainSpec::new("spotify", NextConfig::paper(), 6, 60.0)
                .with_warm_start(cold.agent.into_table()),
        );
        assert!(
            warm.agent.table().total_visits() > visits_before,
            "continued training must add visits"
        );
        assert!(warm.agent.table().len() >= states_before);
    }

    #[test]
    fn soc_bin_changes_the_learned_table() {
        let base = TrainSpec::new("facebook", NextConfig::paper(), 11, 60.0);
        let stock = Trainer::new().train(base.clone());
        let hot = Trainer::new().train(base.with_soc(SocConfig::exynos9810_at_ambient(35.0)));
        assert_ne!(
            stock.agent.table().encode(),
            hot.agent.table().encode(),
            "a hotter device must experience different transitions"
        );
    }

    #[test]
    fn episode_length_is_respected_deterministically() {
        let spec =
            |ep: f64| TrainSpec::new("home", NextConfig::paper(), 2, 50.0).with_episode_s(ep);
        let a = Trainer::new().train(spec(25.0));
        let b = Trainer::new().train(spec(25.0));
        assert_eq!(a.agent.table().encode(), b.agent.table().encode());
        // Different chunking changes session boundaries, hence the run.
        let c = Trainer::new().train(spec(10.0));
        assert_ne!(a.agent.table().encode(), c.agent.table().encode());
    }

    #[test]
    #[should_panic(expected = "episode length must be positive")]
    fn zero_episode_rejected() {
        let _ = TrainSpec::new("home", NextConfig::paper(), 1, 10.0).with_episode_s(0.0);
    }

    #[test]
    fn train_batch_is_bit_identical_to_sequential_training() {
        // Heterogeneous lanes: different apps, seeds, and SoC bins
        // (fleet shape) under one shared budget.
        let specs = vec![
            TrainSpec::new("facebook", NextConfig::paper(), 3, 90.0),
            TrainSpec::new("spotify", NextConfig::paper().with_seed(17), 5, 90.0),
            TrainSpec::new("facebook", NextConfig::paper(), 9, 90.0)
                .with_soc(SocConfig::exynos9810_at_ambient(27.0)),
        ];
        let trainer = Trainer::new();
        let sequential: Vec<TrainOutcome> =
            specs.iter().cloned().map(|s| trainer.train(s)).collect();
        let batched = trainer.train_batch(specs);
        assert_eq!(batched.len(), sequential.len());
        for (l, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            assert_eq!(
                b.agent.table().encode(),
                s.agent.table().encode(),
                "lane {l} learned a different table"
            );
            assert_eq!(b.training_time_s, s.training_time_s, "lane {l}");
            assert_eq!(b.converged, s.converged, "lane {l}");
        }
    }

    #[test]
    fn train_batch_divergent_budgets_fall_back_and_still_match() {
        let specs = vec![
            TrainSpec::new("home", NextConfig::paper(), 2, 50.0),
            TrainSpec::new("home", NextConfig::paper(), 4, 30.0),
        ];
        let trainer = Trainer::new();
        let sequential: Vec<TrainOutcome> =
            specs.iter().cloned().map(|s| trainer.train(s)).collect();
        let batched = trainer.train_batch(specs);
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b.agent.table().encode(), s.agent.table().encode());
            assert_eq!(b.training_time_s, s.training_time_s);
        }
    }
}
