//! Phase-based application demand model.
//!
//! An application is a continuous-time Markov chain over *phases*
//! (splash screen, scrolling, reading, gameplay, …). Each phase carries
//! a nominal [`FrameDemand`]; while the phase is active the demand is
//! modulated by the user's interaction intensity and a deterministic
//! seeded jitter, producing the irregular FPS traces of the paper's
//! Fig. 1.

use mpsoc::perf::FrameDemand;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::user::InteractionIntensity;

/// One behavioural phase of an application.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseModel {
    /// Human-readable phase name (e.g. `"scroll"`).
    pub name: String,
    /// Mean dwell time in the phase, seconds (exponential distribution).
    pub mean_dwell_s: f64,
    /// Nominal demand while in the phase.
    pub demand: FrameDemand,
    /// Relative amplitude of the multiplicative demand jitter (0 = no
    /// jitter; 0.3 = ±30 % swings).
    pub jitter: f64,
    /// How strongly user interaction scales the demand: 0 = insensitive
    /// (video playback), 1 = fully interaction-driven (scrolling).
    pub interaction_gain: f64,
}

impl PhaseModel {
    /// Creates a phase.
    #[must_use]
    pub fn new(name: &str, mean_dwell_s: f64, demand: FrameDemand) -> Self {
        PhaseModel {
            name: name.to_owned(),
            mean_dwell_s,
            demand,
            jitter: 0.2,
            interaction_gain: 0.5,
        }
    }

    /// Sets the jitter amplitude.
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// Sets the interaction gain.
    #[must_use]
    pub fn with_interaction_gain(mut self, gain: f64) -> Self {
        self.interaction_gain = gain.clamp(0.0, 1.0);
        self
    }
}

/// A static description of an application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppModel {
    name: String,
    phases: Vec<PhaseModel>,
    /// Row-stochastic phase transition matrix.
    transitions: Vec<Vec<f64>>,
    initial_phase: usize,
}

impl AppModel {
    /// Builds an application model.
    ///
    /// `transitions[i][j]` is the probability of entering phase `j` when
    /// phase `i` ends; each row must sum to ≈1.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent, a row does not sum to ~1, or
    /// `initial_phase` is out of range.
    #[must_use]
    pub fn new(
        name: &str,
        phases: Vec<PhaseModel>,
        transitions: Vec<Vec<f64>>,
        initial_phase: usize,
    ) -> Self {
        assert!(!phases.is_empty(), "app must have phases");
        assert_eq!(
            transitions.len(),
            phases.len(),
            "transition rows must match phase count"
        );
        for (i, row) in transitions.iter().enumerate() {
            assert_eq!(
                row.len(),
                phases.len(),
                "transition row {i} has wrong width"
            );
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "transition row {i} sums to {sum}, expected 1"
            );
            assert!(
                row.iter().all(|&p| p >= 0.0),
                "negative probability in row {i}"
            );
        }
        assert!(initial_phase < phases.len(), "initial phase out of range");
        AppModel {
            name: name.to_owned(),
            phases,
            transitions,
            initial_phase,
        }
    }

    /// The application's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phases of the application.
    #[must_use]
    pub fn phases(&self) -> &[PhaseModel] {
        &self.phases
    }

    /// Index of the phase a fresh launch starts in.
    #[must_use]
    pub fn initial_phase(&self) -> usize {
        self.initial_phase
    }

    /// Starts a session of this application seeded deterministically.
    #[must_use]
    pub fn start_session(&self, seed: u64) -> AppSession {
        AppSession::new(self.clone(), seed)
    }
}

/// A running instance of an [`AppModel`] producing demand over time.
#[derive(Debug, Clone)]
pub struct AppSession {
    model: AppModel,
    rng: StdRng,
    phase: usize,
    phase_left_s: f64,
    /// Low-pass-filtered jitter state in `[-1, 1]`.
    jitter_state: f64,
}

impl AppSession {
    fn new(model: AppModel, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let phase = model.initial_phase;
        let dwell = sample_dwell(&mut rng, model.phases[phase].mean_dwell_s);
        AppSession {
            model,
            rng,
            phase,
            phase_left_s: dwell,
            jitter_state: 0.0,
        }
    }

    /// The application model this session runs.
    #[must_use]
    pub fn model(&self) -> &AppModel {
        &self.model
    }

    /// Name of the currently active phase.
    #[must_use]
    pub fn phase_name(&self) -> &str {
        &self.model.phases[self.phase].name
    }

    /// Index of the currently active phase.
    #[must_use]
    pub fn phase_index(&self) -> usize {
        self.phase
    }

    /// Advances the session by `dt_s` seconds under the given user
    /// interaction intensity and returns the demand for the interval.
    pub fn advance(&mut self, dt_s: f64, intensity: InteractionIntensity) -> FrameDemand {
        // Phase transitions.
        self.phase_left_s -= dt_s;
        while self.phase_left_s <= 0.0 {
            self.phase = self.next_phase();
            let dwell = sample_dwell(&mut self.rng, self.model.phases[self.phase].mean_dwell_s);
            self.phase_left_s += dwell;
        }
        let phase = &self.model.phases[self.phase];

        // AR(1) jitter keeps consecutive ticks correlated like real
        // frame-cost traces.
        let innovation: f64 = self.rng.gen_range(-1.0..=1.0);
        self.jitter_state = 0.9 * self.jitter_state + 0.1 * innovation;
        let jitter_mult = 1.0 + phase.jitter * self.jitter_state * 3.0;

        // Interaction scales demand between (1-g)·nominal at Idle and
        // (1+g/2)·nominal at Intense.
        let g = phase.interaction_gain;
        let interact_mult = match intensity {
            InteractionIntensity::Idle => 1.0 - g,
            InteractionIntensity::Light => 1.0 - 0.4 * g,
            InteractionIntensity::Active => 1.0,
            InteractionIntensity::Intense => 1.0 + 0.5 * g,
        };

        phase.demand.scaled((jitter_mult * interact_mult).max(0.0))
    }

    fn next_phase(&mut self) -> usize {
        let row = &self.model.transitions[self.phase];
        let draw: f64 = self.rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (j, &p) in row.iter().enumerate() {
            acc += p;
            if draw < acc {
                return j;
            }
        }
        row.len() - 1
    }
}

fn sample_dwell(rng: &mut StdRng, mean_s: f64) -> f64 {
    // Exponential dwell via inverse CDF, floored to one tick to make
    // progress even for tiny means.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-mean_s * u.ln()).max(0.025)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc::perf::Channel;

    fn two_phase_app() -> AppModel {
        let busy = PhaseModel::new("busy", 2.0, FrameDemand::new(5.0e6, 2.0e6, 8.0e6));
        let idle = PhaseModel::new("idle", 2.0, FrameDemand::default())
            .with_interaction_gain(0.0)
            .with_jitter(0.0);
        AppModel::new(
            "test",
            vec![busy, idle],
            vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            0,
        )
    }

    #[test]
    fn session_visits_both_phases() {
        let app = two_phase_app();
        let mut sess = app.start_session(7);
        let mut seen = [false, false];
        for _ in 0..4_000 {
            sess.advance(0.025, InteractionIntensity::Active);
            seen[sess.phase_index()] = true;
        }
        assert!(seen[0] && seen[1], "both phases should occur over 100 s");
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let app = two_phase_app();
        let mut a = app.start_session(42);
        let mut b = app.start_session(42);
        for _ in 0..1_000 {
            let da = a.advance(0.025, InteractionIntensity::Active);
            let db = b.advance(0.025, InteractionIntensity::Active);
            assert_eq!(da, db);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let app = two_phase_app();
        let mut a = app.start_session(1);
        let mut b = app.start_session(2);
        let mut differed = false;
        for _ in 0..1_000 {
            let da = a.advance(0.025, InteractionIntensity::Active);
            let db = b.advance(0.025, InteractionIntensity::Active);
            if da != db {
                differed = true;
            }
        }
        assert!(differed);
    }

    #[test]
    fn intensity_scales_interactive_demand() {
        let phase = PhaseModel::new("scroll", 1e9, FrameDemand::new(4.0e6, 2.0e6, 6.0e6))
            .with_jitter(0.0)
            .with_interaction_gain(1.0);
        let app = AppModel::new("x", vec![phase], vec![vec![1.0]], 0);
        let mut sess = app.start_session(3);
        let idle = sess.advance(0.025, InteractionIntensity::Idle);
        let intense = sess.advance(0.025, InteractionIntensity::Intense);
        assert!(
            idle.frame_cycles_of(Channel::BigCpu) < 1e-6,
            "gain 1 idles demand fully"
        );
        assert!(intense.frame_cycles_of(Channel::BigCpu) > 4.0e6);
    }

    #[test]
    fn zero_gain_phase_ignores_intensity() {
        let phase = PhaseModel::new("video", 1e9, FrameDemand::new(2.0e6, 1.0e6, 3.0e6))
            .with_jitter(0.0)
            .with_interaction_gain(0.0);
        let app = AppModel::new("x", vec![phase], vec![vec![1.0]], 0);
        let mut sess = app.start_session(3);
        let idle = sess.advance(0.025, InteractionIntensity::Idle);
        let intense = sess.advance(0.025, InteractionIntensity::Intense);
        assert_eq!(idle.frame_cycles, intense.frame_cycles);
    }

    #[test]
    fn jitter_stays_bounded() {
        let phase = PhaseModel::new("p", 1e9, FrameDemand::new(4.0e6, 2.0e6, 6.0e6))
            .with_jitter(0.3)
            .with_interaction_gain(0.0);
        let app = AppModel::new("x", vec![phase], vec![vec![1.0]], 0);
        let mut sess = app.start_session(11);
        for _ in 0..10_000 {
            let d = sess.advance(0.025, InteractionIntensity::Active);
            let c = d.frame_cycles_of(Channel::BigCpu);
            assert!(c >= 0.0 && c < 4.0e6 * 2.2, "jitter out of bounds: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn bad_transition_row_panics() {
        let p = PhaseModel::new("p", 1.0, FrameDemand::default());
        let _ = AppModel::new("x", vec![p], vec![vec![0.5]], 0);
    }

    #[test]
    #[should_panic(expected = "initial phase")]
    fn bad_initial_phase_panics() {
        let p = PhaseModel::new("p", 1.0, FrameDemand::default());
        let _ = AppModel::new("x", vec![p], vec![vec![1.0]], 5);
    }
}
