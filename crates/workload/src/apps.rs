//! Preset application models for the workloads evaluated in the paper
//! (§V): Facebook, Spotify, Chrome ("Web Browser"), Lineage 2 Revolution,
//! PubG Mobile and YouTube, plus the home screen used in Figs. 1 and 3.
//!
//! Cycle budgets are calibrated against the Exynos 9810 ladders so that
//! the qualitative regimes of the paper hold: UI apps can reach 60 FPS
//! at mid clocks, the two games are GPU/CPU heavy and only approach 60
//! FPS near the top of the ladders, loading phases burn CPU while
//! producing no frames, and Spotify playback keeps the CPUs busy at
//! zero FPS.

use mpsoc::perf::FrameDemand;

use crate::app::{AppModel, PhaseModel};

/// Home screen / launcher.
#[must_use]
pub fn home() -> AppModel {
    let scroll = PhaseModel::new(
        "scroll",
        3.0,
        FrameDemand::new(2.2e6, 1.2e6, 3.2e6).with_background(0.4e9, 0.15e9, 0.0),
    )
    .with_jitter(0.25)
    .with_interaction_gain(0.9);
    let glance = PhaseModel::new(
        "glance",
        4.0,
        FrameDemand::new(0.0, 0.0, 0.0).with_background(0.08e9, 0.06e9, 0.0),
    )
    .with_jitter(0.1)
    .with_interaction_gain(0.2);
    AppModel::new(
        "home",
        vec![scroll, glance],
        vec![vec![0.3, 0.7], vec![0.6, 0.4]],
        0,
    )
}

/// Facebook: feed scrolling, reading pauses, embedded video.
#[must_use]
pub fn facebook() -> AppModel {
    let splash = PhaseModel::new(
        "splash",
        1.5,
        FrameDemand::new(0.0, 0.0, 0.0).with_background(1.6e9, 0.5e9, 0.05e9),
    )
    .with_jitter(0.1)
    .with_interaction_gain(0.0);
    let scroll = PhaseModel::new(
        "scroll",
        4.0,
        FrameDemand::new(4.2e6, 2.0e6, 5.2e6).with_background(0.5e9, 0.2e9, 0.0),
    )
    .with_jitter(0.3)
    .with_interaction_gain(0.9);
    let read = PhaseModel::new(
        "read",
        5.0,
        FrameDemand::new(0.9e6, 0.5e6, 1.2e6).with_background(0.15e9, 0.1e9, 0.0),
    )
    .with_jitter(0.3)
    .with_interaction_gain(0.8);
    let video = PhaseModel::new(
        "video",
        4.0,
        FrameDemand::new(3.2e6, 1.4e6, 6.0e6)
            .with_background(0.35e9, 0.25e9, 0.0)
            .with_pacing(30.0),
    )
    .with_jitter(0.15)
    .with_interaction_gain(0.1);
    AppModel::new(
        "facebook",
        vec![splash, scroll, read, video],
        vec![
            vec![0.0, 0.8, 0.2, 0.0],
            vec![0.0, 0.15, 0.6, 0.25],
            vec![0.0, 0.65, 0.15, 0.2],
            vec![0.0, 0.5, 0.5, 0.0],
        ],
        0,
    )
}

/// Spotify: brief browsing, then long music playback with a static
/// screen — the paper's showcase of high clocks at zero FPS.
#[must_use]
pub fn spotify() -> AppModel {
    let splash = PhaseModel::new(
        "splash",
        1.2,
        FrameDemand::new(0.0, 0.0, 0.0).with_background(1.4e9, 0.4e9, 0.0),
    )
    .with_jitter(0.1)
    .with_interaction_gain(0.0);
    let browse = PhaseModel::new(
        "browse",
        3.0,
        FrameDemand::new(3.6e6, 1.8e6, 4.6e6).with_background(0.45e9, 0.2e9, 0.0),
    )
    .with_jitter(0.3)
    .with_interaction_gain(0.9);
    let playback = PhaseModel::new(
        "playback",
        12.0,
        FrameDemand::new(0.0, 0.0, 0.0).with_background(0.75e9, 0.45e9, 0.0),
    )
    .with_jitter(0.2)
    .with_interaction_gain(0.1);
    AppModel::new(
        "spotify",
        vec![splash, browse, playback],
        vec![
            vec![0.0, 0.9, 0.1],
            vec![0.0, 0.25, 0.75],
            vec![0.0, 0.35, 0.65],
        ],
        0,
    )
}

/// Chrome web browser: page loads burn CPU with few frames, then
/// scroll/read cycles.
#[must_use]
pub fn web_browser() -> AppModel {
    let load = PhaseModel::new(
        "load",
        2.0,
        FrameDemand::new(1.0e6, 0.5e6, 1.0e6).with_background(2.1e9, 0.7e9, 0.05e9),
    )
    .with_jitter(0.2)
    .with_interaction_gain(0.1);
    let scroll = PhaseModel::new(
        "scroll",
        3.5,
        FrameDemand::new(4.6e6, 2.2e6, 5.0e6).with_background(0.6e9, 0.2e9, 0.0),
    )
    .with_jitter(0.3)
    .with_interaction_gain(0.9);
    let read = PhaseModel::new(
        "read",
        6.0,
        FrameDemand::new(0.7e6, 0.4e6, 0.9e6).with_background(0.1e9, 0.08e9, 0.0),
    )
    .with_jitter(0.25)
    .with_interaction_gain(0.7);
    AppModel::new(
        "web-browser",
        vec![load, scroll, read],
        vec![
            vec![0.05, 0.55, 0.4],
            vec![0.2, 0.2, 0.6],
            vec![0.25, 0.55, 0.2],
        ],
        0,
    )
}

/// Lineage 2 Revolution: a computationally intensive 3D MMORPG
/// (the paper's PPDW case study, Fig. 4).
#[must_use]
pub fn lineage() -> AppModel {
    let loading = PhaseModel::new(
        "loading",
        5.0,
        FrameDemand::new(0.0, 0.0, 0.0).with_background(2.4e9, 0.8e9, 0.15e9),
    )
    .with_jitter(0.1)
    .with_interaction_gain(0.0);
    let gameplay = PhaseModel::new(
        "gameplay",
        30.0,
        FrameDemand::new(14.0e6, 3.5e6, 12.0e6).with_background(0.5e9, 0.2e9, 0.0),
    )
    .with_jitter(0.22)
    .with_interaction_gain(0.35);
    let menu = PhaseModel::new("menu", 4.0, FrameDemand::new(3.0e6, 1.4e6, 3.8e6))
        .with_jitter(0.2)
        .with_interaction_gain(0.6);
    AppModel::new(
        "lineage",
        vec![loading, gameplay, menu],
        vec![
            vec![0.0, 0.9, 0.1],
            vec![0.0, 0.8, 0.2],
            vec![0.05, 0.9, 0.05],
        ],
        0,
    )
}

/// PubG Mobile: heavier CPU (game logic, netcode) than Lineage with a
/// comparable GPU load.
#[must_use]
pub fn pubg() -> AppModel {
    let loading = PhaseModel::new(
        "loading",
        6.0,
        FrameDemand::new(0.0, 0.0, 0.0).with_background(2.6e9, 0.9e9, 0.2e9),
    )
    .with_jitter(0.1)
    .with_interaction_gain(0.0);
    let gameplay = PhaseModel::new(
        "gameplay",
        35.0,
        FrameDemand::new(22.0e6, 5.5e6, 7.0e6).with_background(0.7e9, 0.3e9, 0.0),
    )
    .with_jitter(0.28)
    .with_interaction_gain(0.45);
    let lobby = PhaseModel::new(
        "lobby",
        6.0,
        FrameDemand::new(4.5e6, 2.0e6, 5.5e6).with_background(0.2e9, 0.1e9, 0.0),
    )
    .with_jitter(0.2)
    .with_interaction_gain(0.5);
    AppModel::new(
        "pubg",
        vec![loading, gameplay, lobby],
        vec![
            vec![0.0, 0.85, 0.15],
            vec![0.0, 0.85, 0.15],
            vec![0.05, 0.85, 0.1],
        ],
        0,
    )
}

/// YouTube: browsing bursts plus long 30 FPS-class video playback with
/// decode work in the background.
#[must_use]
pub fn youtube() -> AppModel {
    let browse = PhaseModel::new(
        "browse",
        4.0,
        FrameDemand::new(4.0e6, 1.9e6, 4.8e6).with_background(0.5e9, 0.2e9, 0.0),
    )
    .with_jitter(0.3)
    .with_interaction_gain(0.9);
    let playback = PhaseModel::new(
        "playback",
        15.0,
        FrameDemand::new(3.4e6, 1.5e6, 9.5e6)
            .with_background(0.85e9, 0.5e9, 0.0)
            .with_pacing(30.0),
    )
    .with_jitter(0.12)
    .with_interaction_gain(0.05);
    let pause = PhaseModel::new(
        "pause",
        3.0,
        FrameDemand::new(0.0, 0.0, 0.0).with_background(0.1e9, 0.08e9, 0.0),
    )
    .with_jitter(0.1)
    .with_interaction_gain(0.2);
    AppModel::new(
        "youtube",
        vec![browse, playback, pause],
        vec![
            vec![0.2, 0.75, 0.05],
            vec![0.15, 0.75, 0.1],
            vec![0.45, 0.45, 0.1],
        ],
        0,
    )
}

/// All evaluated applications, in the paper's Fig. 7 order.
#[must_use]
pub fn all() -> Vec<AppModel> {
    vec![
        facebook(),
        lineage(),
        pubg(),
        spotify(),
        web_browser(),
        youtube(),
    ]
}

/// Looks an application model up by name (including `"home"`).
#[must_use]
pub fn by_name(name: &str) -> Option<AppModel> {
    let model = match name {
        "home" => home(),
        "facebook" => facebook(),
        "spotify" => spotify(),
        "web-browser" => web_browser(),
        "lineage" => lineage(),
        "pubg" => pubg(),
        "youtube" => youtube(),
        _ => return None,
    };
    Some(model)
}

/// Whether an app is one of the two games Int. QoS PM supports (§V).
#[must_use]
pub fn is_game(name: &str) -> bool {
    matches!(name, "lineage" | "pubg")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::InteractionIntensity;
    use mpsoc::freq::OppTable;
    use mpsoc::perf::Channel;
    use mpsoc::platform::Platform;

    #[test]
    fn all_presets_construct_and_lookup() {
        assert_eq!(all().len(), 6);
        for app in all() {
            assert!(
                by_name(app.name()).is_some(),
                "lookup failed for {}",
                app.name()
            );
        }
        assert!(by_name("home").is_some());
        assert!(by_name("does-not-exist").is_none());
    }

    #[test]
    fn games_flagged_correctly() {
        assert!(is_game("lineage"));
        assert!(is_game("pubg"));
        assert!(!is_game("facebook"));
        assert!(!is_game("home"));
    }

    #[test]
    fn ui_apps_can_reach_60fps_at_max_clocks() {
        let opps = [
            OppTable::exynos9810_big().max(),
            OppTable::exynos9810_little().max(),
            OppTable::exynos9810_gpu().max(),
        ];
        for app in [home(), facebook(), web_browser()] {
            for phase in app.phases() {
                if phase.demand.is_frameless() {
                    continue;
                }
                let plan = mpsoc::perf::plan(&phase.demand, &opps, &Platform::exynos9810());
                let expect = if phase.demand.pacing_hz > 0.0 {
                    phase.demand.pacing_hz.min(60.0)
                } else {
                    60.0
                };
                assert!(
                    plan.render_rate_hz() >= expect,
                    "{}::{} renders at {:.1} fps at max clocks (want ≥ {expect})",
                    app.name(),
                    phase.name,
                    plan.render_rate_hz()
                );
            }
        }
    }

    #[test]
    fn games_cannot_reach_60fps_at_min_clocks() {
        let opps = [
            OppTable::exynos9810_big().min(),
            OppTable::exynos9810_little().min(),
            OppTable::exynos9810_gpu().min(),
        ];
        for app in [lineage(), pubg()] {
            let gameplay = app
                .phases()
                .iter()
                .find(|p| p.name == "gameplay")
                .expect("games have a gameplay phase");
            let plan = mpsoc::perf::plan(&gameplay.demand, &opps, &Platform::exynos9810());
            assert!(
                plan.render_rate_hz() < 30.0,
                "{} gameplay too cheap: {:.1} fps at min clocks",
                app.name(),
                plan.render_rate_hz()
            );
        }
    }

    #[test]
    fn spotify_playback_is_frameless_but_busy() {
        let app = spotify();
        let playback = app
            .phases()
            .iter()
            .find(|p| p.name == "playback")
            .expect("playback phase");
        assert!(playback.demand.is_frameless());
        assert!(playback.demand.background_hz_of(Channel::BigCpu) > 0.5e9);
    }

    #[test]
    fn loading_phases_are_frameless_cpu_burners() {
        for app in [facebook(), spotify(), lineage(), pubg()] {
            let load = app
                .phases()
                .iter()
                .find(|p| p.name == "splash" || p.name == "loading")
                .unwrap_or_else(|| panic!("{} lacks a loading phase", app.name()));
            assert!(
                load.demand.is_frameless(),
                "{} load phase renders frames",
                app.name()
            );
            assert!(
                load.demand.background_hz_of(Channel::BigCpu) > 1.0e9,
                "{} load phase too light",
                app.name()
            );
        }
    }

    #[test]
    fn sessions_produce_varied_demand() {
        // Run Facebook for 60 s and check FPS-relevant demand actually
        // varies (the paper's intra-app variation premise).
        let app = facebook();
        let mut sess = app.start_session(99);
        let mut mins = f64::INFINITY;
        let mut maxs: f64 = 0.0;
        for _ in 0..2_400 {
            let d = sess.advance(0.025, InteractionIntensity::Active);
            let c = d.frame_cycles_of(Channel::BigCpu);
            mins = mins.min(c);
            maxs = maxs.max(c);
        }
        assert!(
            maxs > mins * 2.0 || mins == 0.0,
            "demand did not vary: [{mins}, {maxs}]"
        );
    }
}
