//! Application and user-interaction workload models.
//!
//! The paper's central observation (§I, Fig. 1) is that the frame rate an
//! application generates varies widely *within* one session because it is
//! driven by the user's interaction with the display/UI: scrolling a feed
//! produces 60 FPS bursts, reading produces almost none, music playback
//! produces none at all while the CPU stays busy decoding audio.
//!
//! This crate generates that behaviour synthetically:
//!
//! * [`app`] — phase-based application models (a Markov chain over
//!   phases such as *splash*, *scroll*, *read*, *playback*), each phase
//!   demanding CPU/GPU cycles per frame plus background cycles,
//! * [`apps`] — presets for the six Google-Play applications evaluated
//!   in the paper (Facebook, Spotify, Chrome, Lineage 2 Revolution,
//!   PubG Mobile, YouTube) plus the home screen,
//! * [`user`] — the user model: interaction-intensity process and the
//!   Deloitte/RescueTime session statistics the paper cites (52 pickups
//!   per day; 70 % of sessions < 2 min, 25 % 2–10 min, 5 % > 10 min),
//! * [`session`] — timeline generation: sequences of app usage the
//!   simulation engine replays deterministically from a seed,
//! * [`scenario`] — day-scale schedules: persona app-choice Markov
//!   chains and seeded [`scenario::DayPlan`]s of pickups and screen-off
//!   gaps summing exactly to a waking day.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod apps;
pub mod scenario;
pub mod session;
pub mod user;

pub use app::{AppModel, AppSession, PhaseModel};
pub use scenario::{DayPlan, DayPlanConfig, Persona, PickupPlan};
pub use session::{idle_demand, SessionEntry, SessionPlan, SessionSim};
pub use user::{InteractionIntensity, UserModel};
