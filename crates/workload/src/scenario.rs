//! Day-scale usage scenarios: personas and pickup schedules.
//!
//! The paper's premise (§I) is *day-level* behaviour: an average user
//! picks the phone up 52 times a day, with Deloitte-distributed session
//! lengths, and the agent reuses one stored Q-table per application
//! across all of those sessions (§IV-B). This module generates that
//! day synthetically:
//!
//! * a [`Persona`] is an app-choice Markov chain over the preset app
//!   catalog — a `gamer` chains game sessions with YouTube breaks, a
//!   `commuter` alternates Spotify and the browser, …
//! * a [`DayPlan`] is a concrete seeded schedule for one waking day:
//!   an alternating sequence of screen-off gaps and app sessions whose
//!   durations sum *exactly* to the configured day length, so a day
//!   runner that honours the plan accounts for every simulated second.
//!
//! Plans are pure functions of `(persona, config, seed)` — the fleet's
//! determinism contract extended to the day horizon.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::apps;
use crate::user::{SessionLengthStats, UserModel};

/// SplitMix64 — derives independent, well-mixed seed streams from one
/// master seed. The day generator's RNG streams and the fleet's device
/// roster (`simkit::fleet`) both split their seeds through this one
/// function, so the two layers cannot drift apart.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A user archetype: which apps they reach for, and how one session's
/// app biases the next (people chain related activities — a game ends
/// in a YouTube clip of the same game, a feed scroll leads to the
/// browser).
#[derive(Debug, Clone, PartialEq)]
pub struct Persona {
    name: String,
    apps: Vec<String>,
    /// Row-stochastic matrix: `transitions[i][j]` is the probability
    /// the session after an `apps[i]` session opens `apps[j]`.
    transitions: Vec<Vec<f64>>,
    /// Index of the day's first app.
    first: usize,
    /// Session-length statistics of this archetype.
    stats: SessionLengthStats,
}

impl Persona {
    /// Builds a persona over `apps` with the given first-app index and
    /// transition matrix, on the stock Deloitte session statistics.
    ///
    /// # Panics
    ///
    /// Panics when an app does not resolve via [`apps::by_name`], the
    /// matrix shape does not match the app list, a row does not sum to
    /// ≈1, or `first` is out of range.
    #[must_use]
    pub fn new(name: &str, app_names: &[&str], transitions: Vec<Vec<f64>>, first: usize) -> Self {
        assert!(!app_names.is_empty(), "persona needs at least one app");
        for app in app_names {
            assert!(
                apps::by_name(app).is_some(),
                "persona '{name}' references unknown app '{app}'"
            );
        }
        assert_eq!(
            transitions.len(),
            app_names.len(),
            "persona '{name}': one transition row per app"
        );
        for (i, row) in transitions.iter().enumerate() {
            assert_eq!(
                row.len(),
                app_names.len(),
                "persona '{name}': transition row {i} has wrong width"
            );
            assert!(
                row.iter().all(|&p| p >= 0.0 && p.is_finite()),
                "persona '{name}': negative probability in row {i}"
            );
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "persona '{name}': transition row {i} sums to {sum}, expected 1"
            );
        }
        assert!(first < app_names.len(), "first app index out of range");
        Persona {
            name: name.to_owned(),
            apps: app_names.iter().map(|&a| a.to_owned()).collect(),
            transitions,
            first,
            stats: SessionLengthStats::deloitte(),
        }
    }

    /// Overrides the persona's session-length statistics (normalised,
    /// see [`SessionLengthStats::normalized`]).
    #[must_use]
    pub fn with_stats(mut self, stats: SessionLengthStats) -> Self {
        self.stats = stats.normalized();
        self
    }

    /// The persona's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The apps this persona uses.
    #[must_use]
    pub fn apps(&self) -> &[String] {
        &self.apps
    }

    /// The persona's session-length statistics.
    #[must_use]
    pub fn stats(&self) -> SessionLengthStats {
        self.stats
    }

    /// Heavy mobile gamer: long Lineage/PubG sessions chained with
    /// YouTube clips, the home screen as connective tissue.
    #[must_use]
    pub fn gamer() -> Self {
        Persona::new(
            "gamer",
            &["lineage", "pubg", "youtube", "home", "web-browser"],
            vec![
                vec![0.35, 0.20, 0.25, 0.15, 0.05],
                vec![0.20, 0.35, 0.25, 0.15, 0.05],
                vec![0.30, 0.25, 0.20, 0.20, 0.05],
                vec![0.30, 0.30, 0.20, 0.10, 0.10],
                vec![0.25, 0.25, 0.20, 0.20, 0.10],
            ],
            3,
        )
    }

    /// Feed-and-messaging heavy user: Facebook dominates, with YouTube
    /// embeds and browser tangents.
    #[must_use]
    pub fn socialite() -> Self {
        Persona::new(
            "socialite",
            &["facebook", "youtube", "web-browser", "home", "spotify"],
            vec![
                vec![0.45, 0.20, 0.15, 0.10, 0.10],
                vec![0.35, 0.25, 0.15, 0.15, 0.10],
                vec![0.40, 0.15, 0.20, 0.15, 0.10],
                vec![0.50, 0.15, 0.15, 0.10, 0.10],
                vec![0.40, 0.20, 0.15, 0.15, 0.10],
            ],
            3,
        )
    }

    /// Commute pattern: Spotify playback bookending the day, podcasts
    /// and browsing in between, short home-screen glances.
    #[must_use]
    pub fn commuter() -> Self {
        Persona::new(
            "commuter",
            &["spotify", "web-browser", "facebook", "home", "youtube"],
            vec![
                vec![0.40, 0.20, 0.15, 0.15, 0.10],
                vec![0.30, 0.25, 0.20, 0.15, 0.10],
                vec![0.30, 0.20, 0.25, 0.15, 0.10],
                vec![0.45, 0.20, 0.15, 0.10, 0.10],
                vec![0.35, 0.20, 0.15, 0.15, 0.15],
            ],
            0,
        )
    }

    /// Long-form reader: browser and feed reading with music in the
    /// background slots, barely any games.
    #[must_use]
    pub fn reader() -> Self {
        Persona::new(
            "reader",
            &["web-browser", "facebook", "home", "spotify", "youtube"],
            vec![
                vec![0.45, 0.20, 0.15, 0.10, 0.10],
                vec![0.35, 0.25, 0.15, 0.10, 0.15],
                vec![0.40, 0.25, 0.10, 0.15, 0.10],
                vec![0.40, 0.20, 0.15, 0.15, 0.10],
                vec![0.35, 0.20, 0.15, 0.10, 0.20],
            ],
            2,
        )
    }

    /// Looks a shipped persona up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "gamer" => Some(Persona::gamer()),
            "socialite" => Some(Persona::socialite()),
            "commuter" => Some(Persona::commuter()),
            "reader" => Some(Persona::reader()),
            _ => None,
        }
    }

    /// Names of the shipped personas.
    #[must_use]
    pub fn names() -> &'static [&'static str] {
        &["gamer", "socialite", "commuter", "reader"]
    }

    /// Draws a shipped persona deterministically from a seed — the
    /// cohort assignment used at campaign scale, where each device's
    /// persona is a pure function of its user seed. Uniform over
    /// [`Persona::names`] via one [`splitmix64`] mix.
    #[must_use]
    pub fn sample(seed: u64) -> Self {
        let names = Persona::names();
        #[allow(clippy::cast_possible_truncation)]
        let idx = (splitmix64(seed) % names.len() as u64) as usize;
        // qlint::allow(PN01, reason = "idx is reduced mod names.len(), so the lookup always hits")
        Persona::by_name(names[idx]).expect("shipped persona name resolves")
    }

    /// Samples the day's app sequence: `pickups` apps starting from the
    /// persona's first app, walking the transition matrix.
    fn sample_apps(&self, pickups: u32, rng: &mut StdRng) -> Vec<String> {
        let mut out = Vec::with_capacity(pickups as usize);
        let mut current = self.first;
        for pickup in 0..pickups {
            if pickup > 0 {
                let row = &self.transitions[current];
                let total: f64 = row.iter().sum();
                let mut draw: f64 = rng.gen_range(0.0..total);
                current = row.len() - 1;
                for (j, &p) in row.iter().enumerate() {
                    if draw < p {
                        current = j;
                        break;
                    }
                    draw -= p;
                }
            }
            out.push(self.apps[current].clone());
        }
        out
    }
}

/// Shape of one generated day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayPlanConfig {
    /// Number of phone pickups (the paper cites 52 per day).
    pub pickups: u32,
    /// Waking-day length, seconds (default 16 h).
    pub day_length_s: f64,
    /// Multiplier applied to every sampled session length (1.0 = the
    /// real distribution; CI smoke runs compress it).
    pub session_scale: f64,
    /// Floor on a scaled session length, seconds.
    pub min_session_s: f64,
}

impl DayPlanConfig {
    /// Fraction of the day sessions may occupy; the rest stays
    /// screen-off so gaps exist and the thermal state genuinely cools
    /// between pickups. [`DayPlan::generate`] scales sessions down to
    /// this budget when the sampled lengths exceed it.
    pub const SCREEN_ON_FRACTION: f64 = 0.75;

    /// The screen-on budget of this day, seconds.
    #[must_use]
    pub fn screen_on_budget_s(&self) -> f64 {
        Self::SCREEN_ON_FRACTION * self.day_length_s
    }

    /// Checks that the configured pickups can fit the screen-on budget
    /// at their minimum session length — the feasibility precondition
    /// of [`DayPlan::generate`].
    ///
    /// # Errors
    ///
    /// Returns the human-readable violation when the day is too short.
    pub fn validate(&self) -> Result<(), String> {
        if f64::from(self.pickups) * self.min_session_s > self.screen_on_budget_s() {
            return Err(format!(
                "day too short: {} pickups x {} s minimum sessions cannot fit {:.0} % of a \
                 {} s day (needs at least {:.0} s)",
                self.pickups,
                self.min_session_s,
                Self::SCREEN_ON_FRACTION * 100.0,
                self.day_length_s,
                f64::from(self.pickups) * self.min_session_s / Self::SCREEN_ON_FRACTION
            ));
        }
        Ok(())
    }

    /// The paper's full day: 52 pickups over a 16 h waking day,
    /// uncompressed Deloitte sessions.
    #[must_use]
    pub fn paper() -> Self {
        DayPlanConfig {
            pickups: UserModel::pickups_per_day(),
            day_length_s: 16.0 * 3_600.0,
            session_scale: 1.0,
            min_session_s: 10.0,
        }
    }

    /// CI-smoke day: still 52 pickups, but sessions compressed 6× over
    /// a 2 h day so a full day simulates in well under a minute.
    #[must_use]
    pub fn quick() -> Self {
        DayPlanConfig {
            day_length_s: 2.0 * 3_600.0,
            session_scale: 1.0 / 6.0,
            ..DayPlanConfig::paper()
        }
    }
}

impl Default for DayPlanConfig {
    fn default() -> Self {
        DayPlanConfig::paper()
    }
}

/// One scheduled pickup: a screen-off gap, then an app session.
#[derive(Debug, Clone, PartialEq)]
pub struct PickupPlan {
    /// Application opened (resolves via [`apps::by_name`]).
    pub app: String,
    /// Screen-off time before this pickup, seconds.
    pub gap_before_s: f64,
    /// Time into the day the session starts, seconds.
    pub start_s: f64,
    /// Session length, seconds.
    pub duration_s: f64,
    /// Seed for the pickup's session simulation (user behaviour).
    pub session_seed: u64,
}

/// A full generated day: gaps and sessions summing exactly to the day
/// length.
#[derive(Debug, Clone, PartialEq)]
pub struct DayPlan {
    /// Persona the plan was generated for.
    pub persona: String,
    /// Master seed of the generation.
    pub seed: u64,
    /// The configuration the plan was generated from — carried along so
    /// a plan can be regenerated bit-for-bit from `(persona, config,
    /// seed)` alone (the record/replay contract).
    pub config: DayPlanConfig,
    /// Waking-day length, seconds.
    pub day_length_s: f64,
    /// The pickups, in time order.
    pub pickups: Vec<PickupPlan>,
    /// Screen-off time after the last session until the day ends,
    /// seconds.
    pub tail_gap_s: f64,
}

/// Scales `durations` down so they sum to at most `budget`, without
/// pushing any below `floor`: a proportional rescale where durations
/// that would cross the floor are pinned to it and the rest share the
/// remaining budget (repeated until stable — at most `n` rounds, since
/// each round pins at least one more duration).
///
/// Requires `durations.len() as f64 * floor <= budget` (asserted by
/// the caller) and every input `>= floor`.
fn shrink_to_budget(durations: &mut [f64], budget: f64, floor: f64) {
    if durations.iter().sum::<f64>() <= budget {
        return;
    }
    let mut pinned = vec![false; durations.len()];
    loop {
        let pinned_total = pinned.iter().filter(|&&p| p).count() as f64 * floor;
        let free_total: f64 = durations
            .iter()
            .zip(&pinned)
            .filter(|(_, &p)| !p)
            .map(|(d, _)| d)
            .sum();
        if free_total <= 0.0 {
            // Float-safety net: everything pinned — settle on the floor.
            for (d, p) in durations.iter_mut().zip(&pinned) {
                if *p {
                    *d = floor;
                }
            }
            break;
        }
        let scale = (budget - pinned_total) / free_total;
        let mut newly_pinned = false;
        for (d, p) in durations.iter().zip(&mut pinned) {
            if !*p && d * scale < floor {
                *p = true;
                newly_pinned = true;
            }
        }
        if newly_pinned {
            continue;
        }
        for (d, p) in durations.iter_mut().zip(&pinned) {
            if *p {
                *d = floor;
            } else {
                *d *= scale;
            }
        }
        break;
    }
}

impl DayPlan {
    /// Generates the day for `(persona, config, seed)` — deterministic:
    /// identical inputs give an identical plan, bit for bit.
    ///
    /// The invariant `Σ gap_before + Σ duration + tail_gap ==
    /// day_length_s` holds exactly (up to float addition error): when
    /// the sampled sessions would not leave at least 25 % of the day
    /// screen-off, sessions are scaled down — sessions at the
    /// `min_session_s` floor are pinned there and the rest share the
    /// remaining budget, so the floor is never violated.
    ///
    /// # Panics
    ///
    /// Panics on zero pickups, a non-positive day length, or a day too
    /// short to fit `pickups × min_session_s` in the screen-on budget
    /// (see [`DayPlanConfig::validate`]).
    #[must_use]
    pub fn generate(persona: &Persona, config: &DayPlanConfig, seed: u64) -> Self {
        assert!(config.pickups > 0, "a day needs at least one pickup");
        assert!(
            config.day_length_s > 0.0 && config.day_length_s.is_finite(),
            "day length must be positive"
        );
        if let Err(violation) = config.validate() {
            // qlint::allow(PN01, reason = "documented panic on invalid DayPlanConfig; generation has no error channel")
            panic!("{violation}");
        }
        let screen_on_budget = config.screen_on_budget_s();
        let mut rng_len =
            UserModel::new(splitmix64(seed ^ 0x5e55_10e5)).with_session_stats(persona.stats());
        let mut rng_app = StdRng::seed_from_u64(splitmix64(seed ^ 0xa995));
        let mut rng_gap = StdRng::seed_from_u64(splitmix64(seed ^ 0x6a95));

        let apps = persona.sample_apps(config.pickups, &mut rng_app);
        let mut durations: Vec<f64> = (0..config.pickups)
            .map(|_| {
                (rng_len.sample_session_length_s() * config.session_scale).max(config.min_session_s)
            })
            .collect();

        // Keep at least a quarter of the day screen-off, so gaps exist
        // and the thermal state genuinely cools between pickups.
        shrink_to_budget(&mut durations, screen_on_budget, config.min_session_s);
        let gap_total = config.day_length_s - durations.iter().sum::<f64>();

        // Raw gap weights (one per pickup plus the tail), normalised to
        // the remaining screen-off budget.
        let raw: Vec<f64> = (0..=config.pickups)
            .map(|_| rng_gap.gen_range(0.2..1.0f64))
            .collect();
        let raw_sum: f64 = raw.iter().sum();
        let gaps: Vec<f64> = raw.iter().map(|w| w / raw_sum * gap_total).collect();

        let mut pickups = Vec::with_capacity(apps.len());
        let mut clock = 0.0f64;
        for (i, (app, duration_s)) in apps.into_iter().zip(durations).enumerate() {
            let gap_before_s = gaps[i];
            clock += gap_before_s;
            pickups.push(PickupPlan {
                app,
                gap_before_s,
                start_s: clock,
                duration_s,
                session_seed: splitmix64(seed ^ (i as u64).wrapping_mul(0xff51_afd7_ed55_8ccd)),
            });
            clock += duration_s;
        }
        DayPlan {
            persona: persona.name().to_owned(),
            seed,
            config: *config,
            day_length_s: config.day_length_s,
            pickups,
            tail_gap_s: gaps[config.pickups as usize],
        }
    }

    /// Total planned screen-on time, seconds.
    #[must_use]
    pub fn screen_on_s(&self) -> f64 {
        self.pickups.iter().map(|p| p.duration_s).sum()
    }

    /// Total planned screen-off time, seconds.
    #[must_use]
    pub fn screen_off_s(&self) -> f64 {
        self.pickups.iter().map(|p| p.gap_before_s).sum::<f64>() + self.tail_gap_s
    }

    /// The distinct apps the day opens, sorted.
    #[must_use]
    pub fn distinct_apps(&self) -> Vec<String> {
        let mut apps: Vec<String> = self.pickups.iter().map(|p| p.app.clone()).collect();
        apps.sort();
        apps.dedup();
        apps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_personas_construct_and_lookup() {
        for &name in Persona::names() {
            let p = Persona::by_name(name).expect("shipped persona");
            assert_eq!(p.name(), name);
            assert!(!p.apps().is_empty());
        }
        assert!(Persona::by_name("astronaut").is_none());
    }

    #[test]
    fn persona_sampling_is_deterministic_and_covers_all() {
        assert_eq!(Persona::sample(7).name(), Persona::sample(7).name());
        let mut seen: Vec<&str> = (0..64u64)
            .map(|s| {
                let p = Persona::sample(s);
                Persona::names()
                    .iter()
                    .find(|&&n| n == p.name())
                    .expect("sampled persona is a shipped one")
            })
            .copied()
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            Persona::names().len(),
            "64 seeds should hit every persona"
        );
    }

    #[test]
    fn generation_is_deterministic_per_persona_and_seed() {
        let cfg = DayPlanConfig::quick();
        let a = DayPlan::generate(&Persona::gamer(), &cfg, 7);
        let b = DayPlan::generate(&Persona::gamer(), &cfg, 7);
        assert_eq!(a, b);
        let c = DayPlan::generate(&Persona::gamer(), &cfg, 8);
        assert_ne!(a, c, "seed must matter");
        let d = DayPlan::generate(&Persona::reader(), &cfg, 7);
        assert_ne!(a.pickups, d.pickups, "persona must matter");
    }

    #[test]
    fn day_accounts_for_every_second() {
        let cfg = DayPlanConfig::paper();
        let plan = DayPlan::generate(&Persona::socialite(), &cfg, 42);
        assert_eq!(plan.pickups.len(), 52);
        let total = plan.screen_on_s() + plan.screen_off_s();
        assert!(
            (total - cfg.day_length_s).abs() < 1e-6,
            "gaps + sessions must sum to the day: {total}"
        );
        // Start times are consistent with the gap/duration chain.
        let mut clock = 0.0;
        for p in &plan.pickups {
            clock += p.gap_before_s;
            assert!((p.start_s - clock).abs() < 1e-6);
            clock += p.duration_s;
        }
    }

    #[test]
    fn gamer_days_are_game_heavy() {
        let plan = DayPlan::generate(&Persona::gamer(), &DayPlanConfig::paper(), 3);
        let games = plan
            .pickups
            .iter()
            .filter(|p| apps::is_game(&p.app))
            .count();
        assert!(
            games > plan.pickups.len() / 3,
            "gamer persona opened games only {games}/52 times"
        );
    }

    #[test]
    fn compressed_days_leave_screen_off_time() {
        let cfg = DayPlanConfig::quick();
        let plan = DayPlan::generate(&Persona::gamer(), &cfg, 11);
        assert!(
            plan.screen_off_s() >= cfg.day_length_s - cfg.screen_on_budget_s() - 1e-6,
            "the screen-off share of the day must survive compression"
        );
        for p in &plan.pickups {
            assert!(p.duration_s >= cfg.min_session_s - 1e-9);
        }
    }

    #[test]
    fn tight_days_rescale_without_violating_the_session_floor() {
        // 20 pickups x 10 s floor = 200 s, against a 300 s budget
        // (0.75 x 400): the sampled sessions vastly exceed the budget,
        // so the waterfill must pin short sessions at the floor and
        // shrink only the long ones.
        let cfg = DayPlanConfig {
            pickups: 20,
            day_length_s: 400.0,
            session_scale: 1.0,
            min_session_s: 10.0,
        };
        let plan = DayPlan::generate(&Persona::socialite(), &cfg, 13);
        for p in &plan.pickups {
            assert!(
                p.duration_s >= cfg.min_session_s - 1e-9,
                "session shrunk below the floor: {} s",
                p.duration_s
            );
        }
        let screen_on = plan.screen_on_s();
        assert!(
            screen_on <= cfg.screen_on_budget_s() + 1e-6,
            "screen-on exceeds the budget: {screen_on}"
        );
        let total = screen_on + plan.screen_off_s();
        assert!((total - cfg.day_length_s).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "day too short")]
    fn impossible_pickup_density_rejected() {
        let cfg = DayPlanConfig {
            pickups: 52,
            day_length_s: 600.0,
            session_scale: 1.0,
            min_session_s: 10.0,
        };
        let _ = DayPlan::generate(&Persona::gamer(), &cfg, 1);
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn unknown_app_in_persona_rejected() {
        let _ = Persona::new("broken", &["tiktok"], vec![vec![1.0]], 0);
    }
}
