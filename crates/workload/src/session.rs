//! Session timelines: which app runs when, for how long, driven by which
//! user.
//!
//! A [`SessionPlan`] is the static schedule (e.g. the paper's Fig. 1
//! session: home screen → Facebook → Spotify over five minutes); a
//! [`SessionSim`] replays it tick by tick, combining the active
//! [`AppSession`] with the [`UserModel`] intensity process into the
//! [`FrameDemand`] the SoC executes.

use mpsoc::perf::FrameDemand;

use crate::app::{AppModel, AppSession};
use crate::apps;
use crate::user::UserModel;

/// One entry of a session plan: an application used for a duration.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEntry {
    /// Application name (must resolve via [`apps::by_name`]).
    pub app: String,
    /// How long the user stays in the app, seconds.
    pub duration_s: f64,
}

impl SessionEntry {
    /// Creates an entry.
    #[must_use]
    pub fn new(app: &str, duration_s: f64) -> Self {
        SessionEntry {
            app: app.to_owned(),
            duration_s,
        }
    }
}

/// An ordered schedule of app usage.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionPlan {
    entries: Vec<SessionEntry>,
}

impl SessionPlan {
    /// Creates an empty plan.
    #[must_use]
    pub fn new() -> Self {
        SessionPlan::default()
    }

    /// Appends an app usage period.
    #[must_use]
    pub fn then(mut self, app: &str, duration_s: f64) -> Self {
        self.entries.push(SessionEntry::new(app, duration_s));
        self
    }

    /// The entries in order.
    #[must_use]
    pub fn entries(&self) -> &[SessionEntry] {
        &self.entries
    }

    /// Total planned duration in seconds.
    #[must_use]
    pub fn total_duration_s(&self) -> f64 {
        self.entries.iter().map(|e| e.duration_s).sum()
    }

    /// The paper's Fig. 1 / Fig. 3 session: home screen, Facebook and
    /// Spotify over roughly five minutes (280 s trace shown).
    #[must_use]
    pub fn paper_fig1() -> Self {
        SessionPlan::new()
            .then("home", 40.0)
            .then("facebook", 120.0)
            .then("spotify", 120.0)
    }

    /// A single-app session of the given length, as used for the per-app
    /// evaluations of Figs. 7 and 8 (games 5 min, other apps 1.5–3 min).
    #[must_use]
    pub fn single(app: &str, duration_s: f64) -> Self {
        SessionPlan::new().then(app, duration_s)
    }

    /// The paper's per-app session length (§V experimental setup):
    /// 300 s for the games, 150 s for everything else.
    #[must_use]
    pub fn paper_session_length_s(app: &str) -> f64 {
        if apps::is_game(app) {
            300.0
        } else {
            150.0
        }
    }
}

/// Replays a [`SessionPlan`] tick by tick.
#[derive(Debug, Clone)]
pub struct SessionSim {
    plan: SessionPlan,
    user: UserModel,
    seed: u64,
    entry_idx: usize,
    entry_left_s: f64,
    current: Option<AppSession>,
}

impl SessionSim {
    /// Creates a simulator for `plan` with a deterministic seed feeding
    /// both the user process and every app session.
    ///
    /// # Panics
    ///
    /// Panics if the plan references an unknown application.
    #[must_use]
    pub fn new(plan: SessionPlan, seed: u64) -> Self {
        for e in plan.entries() {
            assert!(
                apps::by_name(&e.app).is_some(),
                "unknown app '{}' in plan",
                e.app
            );
        }
        let mut sim = SessionSim {
            plan,
            user: UserModel::new(seed),
            seed,
            entry_idx: 0,
            entry_left_s: 0.0,
            current: None,
        };
        sim.load_entry(0);
        sim
    }

    fn load_entry(&mut self, idx: usize) {
        self.entry_idx = idx;
        if let Some(entry) = self.plan.entries().get(idx) {
            self.entry_left_s = entry.duration_s;
            let model: AppModel = apps::by_name(&entry.app).expect("validated in new");
            // Derive a per-entry seed so app traces differ between
            // entries but stay reproducible.
            let app_seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(idx as u64);
            self.current = Some(model.start_session(app_seed));
        } else {
            self.current = None;
            self.entry_left_s = 0.0;
        }
    }

    /// Whether the plan has finished.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.current.is_none()
    }

    /// Name of the currently running app, if any.
    #[must_use]
    pub fn current_app(&self) -> Option<&str> {
        self.plan
            .entries()
            .get(self.entry_idx)
            .map(|e| e.app.as_str())
    }

    /// The user model driving this session.
    #[must_use]
    pub fn user(&self) -> &UserModel {
        &self.user
    }

    /// Advances by `dt_s` and returns the demand for the interval.
    /// After the plan ends, returns an idle (zero) demand.
    pub fn advance(&mut self, dt_s: f64) -> FrameDemand {
        let intensity = self.user.advance(dt_s);
        let Some(app) = self.current.as_mut() else {
            return FrameDemand::default();
        };
        let demand = app.advance(dt_s, intensity);
        self.entry_left_s -= dt_s;
        if self.entry_left_s <= 0.0 {
            let next = self.entry_idx + 1;
            self.load_entry(next);
        }
        demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc::perf::Channel;

    #[test]
    fn plan_builder_accumulates() {
        let plan = SessionPlan::new().then("home", 10.0).then("facebook", 20.0);
        assert_eq!(plan.entries().len(), 2);
        assert_eq!(plan.total_duration_s(), 30.0);
    }

    #[test]
    fn paper_fig1_plan_shape() {
        let plan = SessionPlan::paper_fig1();
        assert_eq!(plan.entries()[0].app, "home");
        assert_eq!(plan.entries()[1].app, "facebook");
        assert_eq!(plan.entries()[2].app, "spotify");
        assert!(plan.total_duration_s() >= 280.0);
    }

    #[test]
    fn paper_session_lengths() {
        assert_eq!(SessionPlan::paper_session_length_s("lineage"), 300.0);
        assert_eq!(SessionPlan::paper_session_length_s("pubg"), 300.0);
        assert_eq!(SessionPlan::paper_session_length_s("facebook"), 150.0);
    }

    #[test]
    fn sim_walks_through_entries_and_finishes() {
        let plan = SessionPlan::new().then("home", 1.0).then("spotify", 1.0);
        let mut sim = SessionSim::new(plan, 1);
        assert_eq!(sim.current_app(), Some("home"));
        for _ in 0..41 {
            sim.advance(0.025);
        }
        assert_eq!(sim.current_app(), Some("spotify"));
        for _ in 0..41 {
            sim.advance(0.025);
        }
        assert!(sim.is_done());
        let d = sim.advance(0.025);
        assert!(d.is_frameless());
        assert_eq!(d.background_hz_of(Channel::BigCpu), 0.0);
    }

    #[test]
    fn sim_is_deterministic() {
        let mk = || SessionSim::new(SessionPlan::paper_fig1(), 77);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..2_000 {
            assert_eq!(a.advance(0.025), b.advance(0.025));
        }
    }

    #[test]
    fn different_entries_get_different_app_traces() {
        // Two consecutive runs of the same app inside a plan should not
        // produce identical traces.
        let plan = SessionPlan::new()
            .then("facebook", 5.0)
            .then("facebook", 5.0);
        let mut sim = SessionSim::new(plan, 3);
        let mut first = Vec::new();
        let mut second = Vec::new();
        for _ in 0..200 {
            first.push(sim.advance(0.025));
        }
        for _ in 0..200 {
            second.push(sim.advance(0.025));
        }
        assert_ne!(first, second);
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn unknown_app_panics() {
        let _ = SessionSim::new(SessionPlan::new().then("nope", 5.0), 1);
    }
}
