//! Session timelines: which app runs when, for how long, driven by which
//! user.
//!
//! A [`SessionPlan`] is the static schedule (e.g. the paper's Fig. 1
//! session: home screen → Facebook → Spotify over five minutes); a
//! [`SessionSim`] replays it tick by tick, combining the active
//! [`AppSession`] with the [`UserModel`] intensity process into the
//! [`FrameDemand`] the SoC executes.

use mpsoc::perf::FrameDemand;

use crate::app::{AppModel, AppSession};
use crate::apps;
use crate::user::UserModel;

/// The idle / screen-off frame demand: no frames, no background work.
///
/// The single constructor behind every "display is off / nothing to
/// render" tick — session plans that have ended, screen-off gaps in a
/// day simulation, and engine warm-up all share it, so "idle" means one
/// thing across the workspace.
#[must_use]
pub fn idle_demand() -> FrameDemand {
    FrameDemand::default()
}

/// One entry of a session plan: an application used for a duration.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEntry {
    /// Application name (must resolve via [`apps::by_name`]).
    pub app: String,
    /// How long the user stays in the app, seconds.
    pub duration_s: f64,
}

impl SessionEntry {
    /// Creates an entry.
    #[must_use]
    pub fn new(app: &str, duration_s: f64) -> Self {
        SessionEntry {
            app: app.to_owned(),
            duration_s,
        }
    }
}

/// An ordered schedule of app usage.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionPlan {
    entries: Vec<SessionEntry>,
}

impl SessionPlan {
    /// Creates an empty plan.
    #[must_use]
    pub fn new() -> Self {
        SessionPlan::default()
    }

    /// Appends an app usage period.
    #[must_use]
    pub fn then(mut self, app: &str, duration_s: f64) -> Self {
        self.entries.push(SessionEntry::new(app, duration_s));
        self
    }

    /// The entries in order.
    #[must_use]
    pub fn entries(&self) -> &[SessionEntry] {
        &self.entries
    }

    /// Total planned duration in seconds.
    #[must_use]
    pub fn total_duration_s(&self) -> f64 {
        self.entries.iter().map(|e| e.duration_s).sum()
    }

    /// The paper's Fig. 1 / Fig. 3 session: home screen, Facebook and
    /// Spotify over roughly five minutes (280 s trace shown).
    #[must_use]
    pub fn paper_fig1() -> Self {
        SessionPlan::new()
            .then("home", 40.0)
            .then("facebook", 120.0)
            .then("spotify", 120.0)
    }

    /// A single-app session of the given length, as used for the per-app
    /// evaluations of Figs. 7 and 8 (games 5 min, other apps 1.5–3 min).
    #[must_use]
    pub fn single(app: &str, duration_s: f64) -> Self {
        SessionPlan::new().then(app, duration_s)
    }

    /// The paper's per-app session length (§V experimental setup):
    /// 300 s for the games, 150 s for everything else.
    #[must_use]
    pub fn paper_session_length_s(app: &str) -> f64 {
        if apps::is_game(app) {
            300.0
        } else {
            150.0
        }
    }
}

/// Replays a [`SessionPlan`] tick by tick.
#[derive(Debug, Clone)]
pub struct SessionSim {
    plan: SessionPlan,
    user: UserModel,
    seed: u64,
    entry_idx: usize,
    entry_left_s: f64,
    current: Option<AppSession>,
}

impl SessionSim {
    /// Creates a simulator for `plan` with a deterministic seed feeding
    /// both the user process and every app session.
    ///
    /// # Panics
    ///
    /// Panics if the plan references an unknown application or an
    /// entry has a negative or non-finite duration (a negative entry
    /// would run the residual-carrying clock backwards).
    #[must_use]
    pub fn new(plan: SessionPlan, seed: u64) -> Self {
        for e in plan.entries() {
            assert!(
                apps::by_name(&e.app).is_some(),
                "unknown app '{}' in plan",
                e.app
            );
            assert!(
                e.duration_s.is_finite() && e.duration_s >= 0.0,
                "entry '{}' has invalid duration {}",
                e.app,
                e.duration_s
            );
        }
        let mut sim = SessionSim {
            plan,
            user: UserModel::new(seed),
            seed,
            entry_idx: 0,
            entry_left_s: 0.0,
            current: None,
        };
        sim.load_entry(0);
        sim
    }

    fn load_entry(&mut self, idx: usize) {
        let mut idx = idx;
        // Entries too short to ever receive a segment are skipped
        // outright, so a zero-duration entry never becomes current.
        while let Some(entry) = self.plan.entries().get(idx) {
            self.entry_idx = idx;
            if entry.duration_s > BOUNDARY_EPS_S {
                self.entry_left_s = entry.duration_s;
                // qlint::allow(PN01, reason = "Session::new resolved every plan entry's app already")
                let model: AppModel = apps::by_name(&entry.app).expect("validated in new");
                // Derive a per-entry seed so app traces differ between
                // entries but stay reproducible.
                let app_seed = self
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(idx as u64);
                self.current = Some(model.start_session(app_seed));
                return;
            }
            idx += 1;
        }
        self.entry_idx = idx;
        self.current = None;
        self.entry_left_s = 0.0;
    }

    /// Whether the plan has finished.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.current.is_none()
    }

    /// Name of the currently running app, if any.
    #[must_use]
    pub fn current_app(&self) -> Option<&str> {
        self.plan
            .entries()
            .get(self.entry_idx)
            .map(|e| e.app.as_str())
    }

    /// The user model driving this session.
    #[must_use]
    pub fn user(&self) -> &UserModel {
        &self.user
    }

    /// Advances by `dt_s` and returns the demand for the interval.
    /// After the plan ends, returns an idle (zero) demand.
    ///
    /// When the interval crosses an entry boundary the tick is split:
    /// the pre-boundary fraction advances the old app, the remainder
    /// advances the next entry (several entries, if they are shorter
    /// than one tick). No residual time is ever dropped, so a plan of
    /// total duration `D` finishes after exactly `D` simulated seconds
    /// instead of rounding every entry up to a whole tick count. The
    /// returned demand is the one of the app that occupied the largest
    /// share of the interval (ties favour the earlier entry).
    pub fn advance(&mut self, dt_s: f64) -> FrameDemand {
        let intensity = self.user.advance(dt_s);
        if self.current.is_none() {
            return idle_demand();
        }
        let mut remaining = dt_s;
        let mut dominant_seg = 0.0f64;
        let mut dominant = idle_demand();
        while let Some(app) = self.current.as_mut() {
            // Entries whose remaining time is within a nanosecond of
            // the full interval absorb it whole: accumulated float
            // residue from repeated subtraction must not split a tick
            // that lands exactly on an entry boundary.
            // The clamp keeps a (construction-rejected, but cheap to
            // defend against) non-positive entry from running the
            // clock backwards.
            let seg = if self.entry_left_s >= remaining - BOUNDARY_EPS_S {
                remaining
            } else {
                self.entry_left_s.max(0.0)
            };
            if seg > 0.0 {
                let demand = app.advance(seg, intensity);
                if seg > dominant_seg {
                    dominant_seg = seg;
                    dominant = demand;
                }
            }
            self.entry_left_s -= seg;
            remaining -= seg;
            if self.entry_left_s <= BOUNDARY_EPS_S {
                let next = self.entry_idx + 1;
                self.load_entry(next);
            }
            if remaining <= 0.0 {
                break;
            }
        }
        dominant
    }
}

/// Tolerance for treating an entry boundary as exactly reached, seconds.
/// Large enough to absorb the float residue of thousands of repeated
/// tick subtractions (~1e-13), far below any meaningful sub-tick
/// duration.
const BOUNDARY_EPS_S: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc::perf::Channel;

    #[test]
    fn plan_builder_accumulates() {
        let plan = SessionPlan::new().then("home", 10.0).then("facebook", 20.0);
        assert_eq!(plan.entries().len(), 2);
        assert_eq!(plan.total_duration_s(), 30.0);
    }

    #[test]
    fn paper_fig1_plan_shape() {
        let plan = SessionPlan::paper_fig1();
        assert_eq!(plan.entries()[0].app, "home");
        assert_eq!(plan.entries()[1].app, "facebook");
        assert_eq!(plan.entries()[2].app, "spotify");
        assert!(plan.total_duration_s() >= 280.0);
    }

    #[test]
    fn paper_session_lengths() {
        assert_eq!(SessionPlan::paper_session_length_s("lineage"), 300.0);
        assert_eq!(SessionPlan::paper_session_length_s("pubg"), 300.0);
        assert_eq!(SessionPlan::paper_session_length_s("facebook"), 150.0);
    }

    #[test]
    fn sim_walks_through_entries_and_finishes() {
        let plan = SessionPlan::new().then("home", 1.0).then("spotify", 1.0);
        let mut sim = SessionSim::new(plan, 1);
        assert_eq!(sim.current_app(), Some("home"));
        for _ in 0..41 {
            sim.advance(0.025);
        }
        assert_eq!(sim.current_app(), Some("spotify"));
        for _ in 0..41 {
            sim.advance(0.025);
        }
        assert!(sim.is_done());
        let d = sim.advance(0.025);
        assert!(d.is_frameless());
        assert_eq!(d.background_hz_of(Channel::BigCpu), 0.0);
    }

    #[test]
    fn sim_is_deterministic() {
        let mk = || SessionSim::new(SessionPlan::paper_fig1(), 77);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..2_000 {
            assert_eq!(a.advance(0.025), b.advance(0.025));
        }
    }

    #[test]
    fn different_entries_get_different_app_traces() {
        // Two consecutive runs of the same app inside a plan should not
        // produce identical traces.
        let plan = SessionPlan::new()
            .then("facebook", 5.0)
            .then("facebook", 5.0);
        let mut sim = SessionSim::new(plan, 3);
        let mut first = Vec::new();
        let mut second = Vec::new();
        for _ in 0..200 {
            first.push(sim.advance(0.025));
        }
        for _ in 0..200 {
            second.push(sim.advance(0.025));
        }
        assert_ne!(first, second);
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn unknown_app_panics() {
        let _ = SessionSim::new(SessionPlan::new().then("nope", 5.0), 1);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_entry_duration_rejected() {
        let _ = SessionSim::new(
            SessionPlan::new().then("home", -1.0).then("spotify", 5.0),
            1,
        );
    }

    #[test]
    fn zero_duration_entries_are_skipped_cleanly() {
        let plan = SessionPlan::new()
            .then("home", 0.0)
            .then("spotify", 1.0)
            .then("facebook", 0.0);
        let mut sim = SessionSim::new(plan, 2);
        for _ in 0..40 {
            sim.advance(0.025);
        }
        assert!(sim.is_done(), "1.0 s of real entries = 40 ticks");
    }

    #[test]
    fn non_tick_multiple_entries_finish_at_the_nominal_tick_count() {
        // Regression: the old clock dropped the residual interval at
        // entry boundaries, so each entry rounded up to whole ticks
        // (1.01 s -> 41 ticks, 0.99 s -> 40 ticks = 81 total) and an
        // engine run of the nominal 80 ticks truncated the tail of the
        // last entry.
        let plan = SessionPlan::new().then("home", 1.01).then("spotify", 0.99);
        let total = plan.total_duration_s();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let nominal_ticks = (total / 0.025).round() as usize;
        assert_eq!(nominal_ticks, 80);
        let mut sim = SessionSim::new(plan, 1);
        for tick in 0..nominal_ticks - 1 {
            sim.advance(0.025);
            assert!(!sim.is_done(), "plan ended early at tick {tick}");
        }
        sim.advance(0.025);
        assert!(sim.is_done(), "plan must finish at the nominal tick count");
    }

    #[test]
    fn entries_shorter_than_a_tick_are_not_skipped() {
        // One tick can cross several boundaries: 1.0 s home, a 0.01 s
        // notification glance, then 0.99 s spotify — total 2.0 s must
        // still complete in exactly 80 ticks.
        let plan = SessionPlan::new()
            .then("home", 1.0)
            .then("facebook", 0.01)
            .then("spotify", 0.99);
        let mut sim = SessionSim::new(plan, 9);
        for _ in 0..79 {
            sim.advance(0.025);
            assert!(!sim.is_done());
        }
        sim.advance(0.025);
        assert!(sim.is_done());
    }

    #[test]
    fn boundary_tick_attributes_the_dominant_segment() {
        // Entry 1 ends 5 ms into tick 41 (1.005 s); the remaining 20 ms
        // belong to spotify, so the boundary tick reports spotify's
        // demand and the current app has moved on.
        let plan = SessionPlan::new().then("home", 1.005).then("spotify", 1.0);
        let mut sim = SessionSim::new(plan, 4);
        for _ in 0..40 {
            sim.advance(0.025);
        }
        assert_eq!(sim.current_app(), Some("home"));
        sim.advance(0.025);
        assert_eq!(
            sim.current_app(),
            Some("spotify"),
            "boundary tick must start the next entry"
        );
    }

    #[test]
    fn tick_multiple_plans_keep_whole_tick_boundaries() {
        // The residual-carrying clock must not perturb plans whose
        // entries are whole tick multiples: every boundary still lands
        // exactly on its nominal tick, with the float residue of
        // repeated subtraction absorbed rather than split into a
        // spurious sub-nanosecond segment (the byte-identity fixtures
        // depend on this).
        let plan = SessionPlan::paper_fig1();
        let mut sim = SessionSim::new(plan, 77);
        let mut boundary_ticks = Vec::new();
        let mut last_app = sim.current_app().map(str::to_owned);
        for tick in 0..11_300 {
            sim.advance(0.025);
            let app = sim.current_app().map(str::to_owned);
            if app != last_app {
                boundary_ticks.push(tick);
                last_app = app;
            }
        }
        // 40 s home = tick 1599->1600, +120 s facebook = 6400, +120 s
        // spotify ends at 11200.
        assert_eq!(boundary_ticks, vec![1_599, 6_399, 11_199]);
    }
}
