//! The user model.
//!
//! Two ingredients from the paper's §I market research:
//!
//! * **Session statistics** (Deloitte / RescueTime): an average user
//!   picks the phone up 52 times a day; 70 % of sessions last under
//!   2 minutes, 25 % last 2–10 minutes and 5 % exceed 10 minutes.
//! * **Interaction intensity**: within a session the user alternates
//!   between idle gazing, light taps and bursts of intense scrolling —
//!   the stochastic process that makes FPS demand vary within one app.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How actively the user is driving the UI right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InteractionIntensity {
    /// No input; the user is watching or has looked away.
    Idle,
    /// Occasional taps.
    Light,
    /// Normal continuous interaction.
    Active,
    /// Fast scrolling / frantic gameplay input.
    Intense,
}

impl InteractionIntensity {
    /// All levels, ordered from least to most active.
    pub const ALL: [InteractionIntensity; 4] = [
        InteractionIntensity::Idle,
        InteractionIntensity::Light,
        InteractionIntensity::Active,
        InteractionIntensity::Intense,
    ];
}

/// Statistics of session lengths, as fractions plus duration bounds in
/// seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionLengthStats {
    /// Probability of a short session, with its bounds in seconds.
    pub short: (f64, f64, f64),
    /// Probability of a medium session, with its bounds in seconds.
    pub medium: (f64, f64, f64),
    /// Probability of a long session, with its bounds in seconds.
    pub long: (f64, f64, f64),
}

impl SessionLengthStats {
    /// The paper's cited Deloitte/RescueTime distribution: 70 % of
    /// sessions under 2 min, 25 % between 2 and 10 min, 5 % longer
    /// (capped at 30 min here).
    #[must_use]
    pub fn deloitte() -> Self {
        SessionLengthStats {
            short: (0.70, 15.0, 120.0),
            medium: (0.25, 120.0, 600.0),
            long: (0.05, 600.0, 1_800.0),
        }
    }

    /// The same stats with every share divided by their sum, so the
    /// three bucket probabilities are a true distribution. Shares that
    /// already sum to 1 (within 1e-9) are returned untouched, keeping
    /// the stock [`SessionLengthStats::deloitte`] numbers bit-exact.
    ///
    /// # Panics
    ///
    /// Panics when a share is negative or non-finite, or the shares sum
    /// to zero — there is no meaningful normalisation for those.
    #[must_use]
    pub fn normalized(mut self) -> Self {
        for (label, share) in [
            ("short", self.short.0),
            ("medium", self.medium.0),
            ("long", self.long.0),
        ] {
            assert!(
                share.is_finite() && share >= 0.0,
                "{label} session share must be finite and non-negative, got {share}"
            );
        }
        let sum = self.short.0 + self.medium.0 + self.long.0;
        assert!(sum > 0.0, "session-length shares sum to zero");
        if (sum - 1.0).abs() > 1e-9 {
            self.short.0 /= sum;
            self.medium.0 /= sum;
            self.long.0 /= sum;
        }
        self
    }
}

/// A stochastic user: interaction-intensity Markov process plus session
/// sampling.
#[derive(Debug, Clone)]
pub struct UserModel {
    rng: StdRng,
    intensity: InteractionIntensity,
    /// Mean time between intensity re-draws, seconds.
    mean_hold_s: f64,
    hold_left_s: f64,
    stats: SessionLengthStats,
}

impl UserModel {
    /// Creates a user seeded deterministically, starting `Active` with a
    /// 1.5 s mean intensity hold.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        UserModel {
            rng: StdRng::seed_from_u64(seed),
            intensity: InteractionIntensity::Active,
            mean_hold_s: 1.5,
            hold_left_s: 1.5,
            stats: SessionLengthStats::deloitte(),
        }
    }

    /// Overrides the session-length statistics.
    ///
    /// The shares are normalised to sum to 1 (see
    /// [`SessionLengthStats::normalized`]): the sampler buckets by
    /// cumulative share, so un-normalised inputs would silently
    /// mis-bucket — a shortfall used to inflate the long bucket and an
    /// overflow starved it entirely.
    ///
    /// # Panics
    ///
    /// Panics when a share is negative or non-finite, or all shares are
    /// zero.
    #[must_use]
    pub fn with_session_stats(mut self, stats: SessionLengthStats) -> Self {
        self.stats = stats.normalized();
        self
    }

    /// Current interaction intensity.
    #[must_use]
    pub fn intensity(&self) -> InteractionIntensity {
        self.intensity
    }

    /// Advances the interaction process by `dt_s` and returns the
    /// intensity in effect for the interval.
    pub fn advance(&mut self, dt_s: f64) -> InteractionIntensity {
        self.hold_left_s -= dt_s;
        while self.hold_left_s <= 0.0 {
            self.intensity = self.draw_intensity();
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            self.hold_left_s += (-self.mean_hold_s * u.ln()).max(0.1);
        }
        self.intensity
    }

    fn draw_intensity(&mut self) -> InteractionIntensity {
        // Stationary mix biased towards engaged states; transitions from
        // the current state favour neighbours (users rarely jump from
        // idle straight to intense).
        let weights: [f64; 4] = match self.intensity {
            InteractionIntensity::Idle => [0.45, 0.35, 0.18, 0.02],
            InteractionIntensity::Light => [0.20, 0.35, 0.38, 0.07],
            InteractionIntensity::Active => [0.10, 0.25, 0.45, 0.20],
            InteractionIntensity::Intense => [0.05, 0.15, 0.45, 0.35],
        };
        let total: f64 = weights.iter().sum();
        let mut draw: f64 = self.rng.gen_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            if draw < w {
                return InteractionIntensity::ALL[i];
            }
            draw -= w;
        }
        InteractionIntensity::Intense
    }

    /// Samples one session length in seconds from the configured
    /// statistics.
    pub fn sample_session_length_s(&mut self) -> f64 {
        let draw: f64 = self.rng.gen_range(0.0..1.0);
        let (lo, hi) = if draw < self.stats.short.0 {
            (self.stats.short.1, self.stats.short.2)
        } else if draw < self.stats.short.0 + self.stats.medium.0 {
            (self.stats.medium.1, self.stats.medium.2)
        } else {
            (self.stats.long.1, self.stats.long.2)
        };
        self.rng.gen_range(lo..hi)
    }

    /// The paper's cited average number of pickups per workday.
    #[must_use]
    pub fn pickups_per_day() -> u32 {
        52
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_process_visits_all_levels() {
        let mut user = UserModel::new(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..40_000 {
            seen.insert(user.advance(0.025));
        }
        assert_eq!(
            seen.len(),
            4,
            "process should visit every intensity over 1000 s"
        );
    }

    #[test]
    fn intensity_deterministic_per_seed() {
        let mut a = UserModel::new(9);
        let mut b = UserModel::new(9);
        for _ in 0..5_000 {
            assert_eq!(a.advance(0.025), b.advance(0.025));
        }
    }

    #[test]
    fn session_lengths_follow_deloitte_shares() {
        let mut user = UserModel::new(123);
        let mut short = 0;
        let mut medium = 0;
        let mut long = 0;
        let n = 20_000;
        for _ in 0..n {
            let len = user.sample_session_length_s();
            assert!((15.0..1_800.0).contains(&len));
            if len < 120.0 {
                short += 1;
            } else if len < 600.0 {
                medium += 1;
            } else {
                long += 1;
            }
        }
        let fs = f64::from(short) / f64::from(n);
        let fm = f64::from(medium) / f64::from(n);
        let fl = f64::from(long) / f64::from(n);
        assert!((fs - 0.70).abs() < 0.02, "short share {fs}");
        assert!((fm - 0.25).abs() < 0.02, "medium share {fm}");
        assert!((fl - 0.05).abs() < 0.01, "long share {fl}");
    }

    #[test]
    fn engaged_states_dominate() {
        // Mobile users interact most of the time they look at the phone.
        let mut user = UserModel::new(7);
        let mut active_ticks = 0u32;
        let total = 40_000u32;
        for _ in 0..total {
            let i = user.advance(0.025);
            if i >= InteractionIntensity::Active {
                active_ticks += 1;
            }
        }
        let share = f64::from(active_ticks) / f64::from(total);
        assert!(share > 0.4, "active+intense share too low: {share}");
    }

    #[test]
    fn pickups_match_paper() {
        assert_eq!(UserModel::pickups_per_day(), 52);
    }

    /// Empirical bucket shares over `n` samples.
    fn measured_shares(stats: SessionLengthStats, n: u32) -> (f64, f64, f64) {
        let mut user = UserModel::new(4242).with_session_stats(stats);
        let (mut short, mut medium, mut long) = (0u32, 0u32, 0u32);
        for _ in 0..n {
            let len = user.sample_session_length_s();
            if len < 120.0 {
                short += 1;
            } else if len < 600.0 {
                medium += 1;
            } else {
                long += 1;
            }
        }
        (
            f64::from(short) / f64::from(n),
            f64::from(medium) / f64::from(n),
            f64::from(long) / f64::from(n),
        )
    }

    #[test]
    fn under_unit_shares_no_longer_inflate_the_long_bucket() {
        // Shares summing to 0.5: before normalisation the sampler gave
        // everything above 0.475 to the long bucket (~52.5 % instead of
        // the intended 5 %).
        let stats = SessionLengthStats {
            short: (0.35, 15.0, 120.0),
            medium: (0.125, 120.0, 600.0),
            long: (0.025, 600.0, 1_800.0),
        };
        let (fs, fm, fl) = measured_shares(stats, 20_000);
        assert!((fs - 0.70).abs() < 0.02, "short share {fs}");
        assert!((fm - 0.25).abs() < 0.02, "medium share {fm}");
        assert!((fl - 0.05).abs() < 0.01, "long share {fl}");
    }

    #[test]
    fn over_unit_shares_no_longer_starve_the_long_bucket() {
        // Shares summing to 2.0: before normalisation `draw < 1.4` was
        // always true, so every session was short and long sessions
        // vanished.
        let stats = SessionLengthStats {
            short: (1.40, 15.0, 120.0),
            medium: (0.50, 120.0, 600.0),
            long: (0.10, 600.0, 1_800.0),
        };
        let (fs, fm, fl) = measured_shares(stats, 20_000);
        assert!((fs - 0.70).abs() < 0.02, "short share {fs}");
        assert!((fm - 0.25).abs() < 0.02, "medium share {fm}");
        assert!((fl - 0.05).abs() < 0.01, "long share {fl}");
    }

    #[test]
    fn already_normalised_shares_stay_bit_exact() {
        let stats = SessionLengthStats::deloitte().normalized();
        assert_eq!(stats, SessionLengthStats::deloitte());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_share_rejected() {
        let mut stats = SessionLengthStats::deloitte();
        stats.medium.0 = -0.25;
        let _ = UserModel::new(1).with_session_stats(stats);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn all_zero_shares_rejected() {
        let mut stats = SessionLengthStats::deloitte();
        stats.short.0 = 0.0;
        stats.medium.0 = 0.0;
        stats.long.0 = 0.0;
        let _ = stats.normalized();
    }
}
