//! Property-based tests of the workload generators.

use proptest::prelude::*;

use workload::apps;
use workload::user::{InteractionIntensity, SessionLengthStats, UserModel};
use workload::{DayPlan, DayPlanConfig, Persona, SessionPlan, SessionSim};

proptest! {
    /// Demands produced by any preset app are always physically valid:
    /// non-negative cycles, finite values.
    #[test]
    fn app_demands_always_valid(
        app_idx in 0usize..7,
        seed in 0u64..1000,
        ticks in 1usize..400,
    ) {
        let names = ["home", "facebook", "spotify", "web-browser", "lineage", "pubg", "youtube"];
        let app = apps::by_name(names[app_idx]).expect("preset exists");
        let mut sess = app.start_session(seed);
        let mut user = UserModel::new(seed ^ 0xABCD);
        for _ in 0..ticks {
            let intensity = user.advance(0.025);
            let d = sess.advance(0.025, intensity);
            for c in d.frame_cycles {
                prop_assert!(c.is_finite() && c >= 0.0);
            }
            for b in d.background_hz {
                prop_assert!(b.is_finite() && b >= 0.0);
            }
            prop_assert!(d.pacing_hz >= 0.0);
        }
    }

    /// Session simulation is a pure function of (plan, seed).
    #[test]
    fn sessions_deterministic(seed in 0u64..500, dur in 1.0..30.0f64) {
        let plan = SessionPlan::new().then("facebook", dur).then("spotify", dur);
        let mut a = SessionSim::new(plan.clone(), seed);
        let mut b = SessionSim::new(plan, seed);
        for _ in 0..((2.0 * dur / 0.025) as usize + 10) {
            prop_assert_eq!(a.advance(0.025), b.advance(0.025));
        }
        prop_assert_eq!(a.is_done(), b.is_done());
    }

    /// The interaction process only emits valid intensities and user
    /// session lengths stay within the configured bounds.
    #[test]
    fn user_outputs_in_range(seed in 0u64..1000, n in 1usize..300) {
        let mut user = UserModel::new(seed);
        for _ in 0..n {
            let i = user.advance(0.1);
            prop_assert!(InteractionIntensity::ALL.contains(&i));
        }
        for _ in 0..20 {
            let len = user.sample_session_length_s();
            prop_assert!((15.0..=1_800.0).contains(&len));
        }
    }

    /// A plan's simulator finishes exactly when its planned duration is
    /// exhausted (within one tick).
    #[test]
    fn session_finishes_on_schedule(dur in 0.5..20.0f64, seed in 0u64..100) {
        let plan = SessionPlan::single("home", dur);
        let mut sim = SessionSim::new(plan, seed);
        let mut t = 0.0;
        while !sim.is_done() {
            sim.advance(0.025);
            t += 0.025;
            prop_assert!(t < dur + 1.0, "session overran: {t} vs {dur}");
        }
        prop_assert!(t >= dur - 0.05, "session ended early: {t} vs {dur}");
    }

    /// The session clock never drifts, whatever the entry durations:
    /// a multi-entry plan of total duration D is done after exactly
    /// ceil(D / dt) ticks — every entry boundary is split, never
    /// rounded up to a whole tick (the PR-5 clock fix).
    #[test]
    fn multi_entry_plans_never_drift(
        d1 in 0.11..5.0f64,
        d2 in 0.11..5.0f64,
        d3 in 0.11..5.0f64,
        seed in 0u64..100,
    ) {
        let plan = SessionPlan::new()
            .then("home", d1)
            .then("facebook", d2)
            .then("spotify", d3);
        let total = plan.total_duration_s();
        let mut sim = SessionSim::new(plan, seed);
        let mut ticks = 0u32;
        while !sim.is_done() {
            sim.advance(0.025);
            ticks += 1;
            prop_assert!(f64::from(ticks) * 0.025 < total + 0.026, "clock drifted");
        }
        let expect = (total / 0.025).ceil();
        prop_assert!(
            (f64::from(ticks) - expect).abs() <= 1.0,
            "finished after {ticks} ticks, expected ~{expect}"
        );
    }

    /// A generated day plan is a pure function of (persona, config,
    /// seed): bit-identical on regeneration, every referenced app
    /// resolves through the catalog, and gaps + sessions sum exactly
    /// to the configured day length.
    #[test]
    fn day_plans_deterministic_resolvable_and_exhaustive(
        seed in 0u64..500,
        persona_idx in 0usize..4,
        pickups in 1u32..30,
        day_hours in 0.5..4.0f64,
    ) {
        let persona = Persona::by_name(Persona::names()[persona_idx]).expect("shipped");
        let config = DayPlanConfig {
            pickups,
            day_length_s: day_hours * 3_600.0,
            session_scale: 0.2,
            min_session_s: 10.0,
        };
        let plan = DayPlan::generate(&persona, &config, seed);
        prop_assert_eq!(&plan, &DayPlan::generate(&persona, &config, seed));
        prop_assert_eq!(plan.pickups.len(), pickups as usize);
        for p in &plan.pickups {
            prop_assert!(
                apps::by_name(&p.app).is_some(),
                "plan references unknown app '{}'", p.app
            );
            prop_assert!(p.duration_s > 0.0 && p.gap_before_s >= 0.0);
        }
        let total = plan.screen_on_s() + plan.screen_off_s();
        prop_assert!(
            (total - config.day_length_s).abs() < 1e-6 * config.day_length_s.max(1.0),
            "gaps + sessions must sum to the day: {} vs {}",
            total, config.day_length_s
        );
    }
}

/// The paper's cited Deloitte/RescueTime session-length split — 70 % of
/// sessions under 2 min, 25 % between 2 and 10 min, 5 % longer — must
/// hold within tight tolerance over a large sample, for *every* user
/// seed (the fleet's user mix draws from many).
#[test]
fn session_length_sampling_reproduces_deloitte_split_at_scale() {
    let stats = SessionLengthStats::deloitte();
    let total_p = stats.short.0 + stats.medium.0 + stats.long.0;
    assert!((total_p - 1.0).abs() < 1e-12, "shares must sum to 1");
    assert_eq!(
        (stats.short.0, stats.medium.0, stats.long.0),
        (0.70, 0.25, 0.05)
    );
    // The bucket boundaries are the cited 2 min / 10 min cut points.
    assert_eq!(stats.short.2, 120.0);
    assert_eq!(stats.medium.1, 120.0);
    assert_eq!(stats.medium.2, 600.0);
    assert_eq!(stats.long.1, 600.0);

    for seed in [1u64, 77, 4_242] {
        let mut user = UserModel::new(seed);
        let n = 100_000u32;
        let (mut short, mut medium, mut long) = (0u32, 0u32, 0u32);
        for _ in 0..n {
            let len = user.sample_session_length_s();
            assert!((15.0..1_800.0).contains(&len), "length {len} out of bounds");
            if len < 120.0 {
                short += 1;
            } else if len < 600.0 {
                medium += 1;
            } else {
                long += 1;
            }
        }
        let (fs, fm, fl) = (
            f64::from(short) / f64::from(n),
            f64::from(medium) / f64::from(n),
            f64::from(long) / f64::from(n),
        );
        // 100k draws put the binomial σ at ≈0.15 % for the 70 % bucket;
        // ±1 % is > 6σ, so a failure means the sampler, not the dice.
        assert!((fs - 0.70).abs() < 0.01, "seed {seed}: short share {fs}");
        assert!((fm - 0.25).abs() < 0.01, "seed {seed}: medium share {fm}");
        assert!((fl - 0.05).abs() < 0.005, "seed {seed}: long share {fl}");
    }
}
