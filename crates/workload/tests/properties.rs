//! Property-based tests of the workload generators.

use proptest::prelude::*;

use workload::apps;
use workload::user::{InteractionIntensity, UserModel};
use workload::{SessionPlan, SessionSim};

proptest! {
    /// Demands produced by any preset app are always physically valid:
    /// non-negative cycles, finite values.
    #[test]
    fn app_demands_always_valid(
        app_idx in 0usize..7,
        seed in 0u64..1000,
        ticks in 1usize..400,
    ) {
        let names = ["home", "facebook", "spotify", "web-browser", "lineage", "pubg", "youtube"];
        let app = apps::by_name(names[app_idx]).expect("preset exists");
        let mut sess = app.start_session(seed);
        let mut user = UserModel::new(seed ^ 0xABCD);
        for _ in 0..ticks {
            let intensity = user.advance(0.025);
            let d = sess.advance(0.025, intensity);
            for c in d.frame_cycles {
                prop_assert!(c.is_finite() && c >= 0.0);
            }
            for b in d.background_hz {
                prop_assert!(b.is_finite() && b >= 0.0);
            }
            prop_assert!(d.pacing_hz >= 0.0);
        }
    }

    /// Session simulation is a pure function of (plan, seed).
    #[test]
    fn sessions_deterministic(seed in 0u64..500, dur in 1.0..30.0f64) {
        let plan = SessionPlan::new().then("facebook", dur).then("spotify", dur);
        let mut a = SessionSim::new(plan.clone(), seed);
        let mut b = SessionSim::new(plan, seed);
        for _ in 0..((2.0 * dur / 0.025) as usize + 10) {
            prop_assert_eq!(a.advance(0.025), b.advance(0.025));
        }
        prop_assert_eq!(a.is_done(), b.is_done());
    }

    /// The interaction process only emits valid intensities and user
    /// session lengths stay within the configured bounds.
    #[test]
    fn user_outputs_in_range(seed in 0u64..1000, n in 1usize..300) {
        let mut user = UserModel::new(seed);
        for _ in 0..n {
            let i = user.advance(0.1);
            prop_assert!(InteractionIntensity::ALL.contains(&i));
        }
        for _ in 0..20 {
            let len = user.sample_session_length_s();
            prop_assert!((15.0..=1_800.0).contains(&len));
        }
    }

    /// A plan's simulator finishes exactly when its planned duration is
    /// exhausted (within one tick).
    #[test]
    fn session_finishes_on_schedule(dur in 0.5..20.0f64, seed in 0u64..100) {
        let plan = SessionPlan::single("home", dur);
        let mut sim = SessionSim::new(plan, seed);
        let mut t = 0.0;
        while !sim.is_done() {
            sim.advance(0.025);
            t += 0.025;
            prop_assert!(t < dur + 1.0, "session overran: {t} vs {dur}");
        }
        prop_assert!(t >= dur - 0.05, "session ended early: {t} vs {dur}");
    }
}
