//! A synthetic day of phone usage: 52 pickups (the Deloitte statistic
//! the paper cites) across the six evaluated applications, exercising
//! the per-application Q-table store — each app is trained **once**, on
//! first use, and every later session reuses the stored table exactly
//! as §IV-B describes.
//!
//! Session lengths follow the paper's cited distribution (70 % < 2 min,
//! 25 % 2–10 min, 5 % > 10 min), compressed 3× so the example finishes
//! quickly.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example daily_usage
//! ```

use next_mpsoc::governors::Schedutil;
use next_mpsoc::next_core::{NextAgent, NextConfig, QTableStore};
use next_mpsoc::simkit::experiment::{evaluate_governor, train_next_for_app};
use next_mpsoc::workload::{SessionPlan, UserModel};

const APPS: [&str; 6] = [
    "facebook",
    "spotify",
    "web-browser",
    "youtube",
    "lineage",
    "pubg",
];

fn main() {
    println!("== a (compressed) day in the life: 52 pickups ==\n");
    let mut user = UserModel::new(99);
    let mut store = QTableStore::in_memory();

    let mut day_energy_next = 0.0f64;
    let mut day_energy_sched = 0.0f64;
    let mut seconds_used = 0.0f64;
    let mut trainings = 0u32;

    for pickup in 0..UserModel::pickups_per_day() {
        let app = APPS[(pickup as usize) % APPS.len()];
        let len_s = (user.sample_session_length_s() / 3.0).max(20.0);
        let plan = SessionPlan::single(app, len_s);

        // First use of an app: one-time training, table stored.
        if !store.contains(app) {
            let budget = if app == "lineage" || app == "pubg" {
                1_200.0
            } else {
                600.0
            };
            let out = train_next_for_app(app, NextConfig::paper(), 7, budget);
            store
                .save(app, out.agent.table())
                .expect("in-memory save cannot fail");
            trainings += 1;
            println!(
                "[pickup {:2}] trained {app} in {:.0} simulated s ({} states)",
                pickup + 1,
                out.training_time_s,
                out.agent.table().len()
            );
        }

        let table = store.load(app).expect("stored above");
        let mut agent = NextAgent::with_table(NextConfig::paper(), table, false);
        let next = evaluate_governor(&mut agent, &plan, 5_000 + u64::from(pickup));
        let sched = evaluate_governor(&mut Schedutil::new(), &plan, 5_000 + u64::from(pickup));

        day_energy_next += next.summary.energy_j;
        day_energy_sched += sched.summary.energy_j;
        seconds_used += len_s;

        if pickup < 6 || pickup % 13 == 0 {
            println!(
                "[pickup {:2}] {app:<12} {len_s:5.0} s | next {:.2} W vs schedutil {:.2} W",
                pickup + 1,
                next.summary.avg_power_w,
                sched.summary.avg_power_w
            );
        }
    }

    println!("\n== day summary ==");
    println!(
        "screen-on time: {:.1} min across 52 pickups",
        seconds_used / 60.0
    );
    println!("one-time trainings performed: {trainings} (then reused from the store)");
    println!(
        "energy: next {:.0} J vs schedutil {:.0} J -> {:.1} % saved over the day",
        day_energy_next,
        day_energy_sched,
        (1.0 - day_energy_next / day_energy_sched) * 100.0
    );
}
