//! A day in the life, on the real day engine: 52 pickups (the Deloitte
//! statistic the paper cites) scheduled by a persona's app-choice
//! Markov chain, executed as **one continuous simulation** — screen-off
//! gaps keep the thermal model ticking, and each app is trained once on
//! first use with its Q-table stored and reused exactly as §IV-B
//! describes.
//!
//! This is a thin caller of `workload::scenario` + `simkit::day`; the
//! same subsystem backs `next-sim day` and its JSON artifact. Sessions
//! are compressed (the `quick` day config) so the example finishes in
//! seconds.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example daily_usage
//! ```

use next_mpsoc::next_core::QTableStore;
use next_mpsoc::simkit::day::{run_day, DaySpec};
use next_mpsoc::workload::{DayPlan, DayPlanConfig, Persona};

fn main() {
    let persona = Persona::socialite();
    let plan = DayPlan::generate(&persona, &DayPlanConfig::quick(), 99);
    println!(
        "== a (compressed) day in the life of a {}: {} pickups over {:.1} h ==\n",
        persona.name(),
        plan.pickups.len(),
        plan.day_length_s / 3_600.0
    );

    // First boot: the store is empty, so Next trains each app exactly
    // once, on its first pickup, then reuses the stored table.
    let mut store: QTableStore = QTableStore::in_memory();
    let next = run_day(
        &DaySpec::new(plan.clone(), "next").with_train_budget_s(120.0),
        &mut store,
    );
    let sched = run_day(&DaySpec::new(plan, "schedutil"), &mut store);

    for s in next.sessions.iter().take(6) {
        println!(
            "[pickup {:2}] {:<12} {:5.0} s | starts at {:4.1} C | next {:.2} W, {:4.1} fps",
            s.pickup + 1,
            s.app,
            s.duration_s,
            s.start_temp_hot_c,
            s.summary.avg_power_w,
            s.summary.avg_fps
        );
    }
    println!("...\n== day summary ==");
    println!(
        "screen-on time: {:.1} min across {} pickups ({:.1} h screen-off)",
        next.screen_on_s / 60.0,
        next.pickup_count(),
        next.screen_off_s / 3_600.0
    );
    println!(
        "one-time trainings performed: {} (then reused from the store)",
        next.trainings
    );
    println!(
        "energy: next {:.0} J vs schedutil {:.0} J -> {:.1} % saved over the day",
        next.energy_total_j(),
        sched.energy_total_j(),
        (1.0 - next.energy_total_j() / sched.energy_total_j()) * 100.0
    );
    println!(
        "battery: next {:.1} % vs schedutil {:.1} % of the Note 9 pack",
        next.battery_drain_pct, sched.battery_drain_pct
    );
}
