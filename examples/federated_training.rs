//! Federated / cloud training (§IV-C): a small fleet of simulated
//! devices each trains Next on the same application with *different*
//! users; the "cloud" merges the per-device Q-tables by visit-weighted
//! averaging and ships the merged table back. The example also prints
//! the cloud-vs-online training-time model of Fig. 6.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example federated_training
//! ```

use next_mpsoc::governors::Schedutil;
use next_mpsoc::next_core::{NextAgent, NextConfig};
use next_mpsoc::qlearn::federated::{CloudModel, MergeAccumulator};
use next_mpsoc::qlearn::DenseStore;
use next_mpsoc::simkit::experiment::{evaluate_governor, train_next_for_app};
use next_mpsoc::workload::SessionPlan;

const FLEET: usize = 4;
const APP: &str = "facebook";

fn main() {
    println!("== federated training: {FLEET} devices, app = {APP} ==\n");

    // Each device trains with its own user (seed) — shorter budgets than
    // a solo device would need, because the fleet shares the work. The
    // cloud folds each uploaded table into the streaming accumulator
    // and releases it immediately: memory stays bounded by the union of
    // visited states no matter how large the fleet grows.
    let mut acc: MergeAccumulator<DenseStore> = MergeAccumulator::new(9, 0.0);
    let mut online_times = Vec::new();
    for device in 0..FLEET {
        let seed = 100 + device as u64;
        let out = train_next_for_app(APP, NextConfig::paper().with_seed(seed), seed, 300.0);
        println!(
            "device {device}: trained {:.0} simulated s, {} states, converged: {}",
            out.training_time_s,
            out.agent.table().len(),
            out.converged
        );
        online_times.push(out.training_time_s);
        acc.fold(out.agent.table()).expect("shared action space");
        // out (and its table) is dropped here — already folded.
    }

    // Cloud-side merge: normalise the accumulated sums.
    let merged = acc.finish().expect("fleet uploaded tables");
    println!(
        "\nmerged fleet table: {} states, {} total visits",
        merged.len(),
        merged.total_visits()
    );

    // The merged table is pushed back and used for greedy inference.
    let plan = SessionPlan::single(APP, 120.0);
    let sched = evaluate_governor(&mut Schedutil::new(), &plan, 9_999);
    let mut fleet_agent = NextAgent::with_table(NextConfig::paper(), merged, false);
    let fleet = evaluate_governor(&mut fleet_agent, &plan, 9_999);
    println!(
        "fleet-table agent: {:.2} W vs schedutil {:.2} W ({:.1} % saving) at {:.1} fps",
        fleet.summary.avg_power_w,
        sched.summary.avg_power_w,
        fleet.summary.power_saving_vs(&sched.summary),
        fleet.summary.avg_fps
    );

    // Fig. 6's timing model: the same training executed in the cloud.
    let cloud = CloudModel::xeon_e7_8860v3();
    println!(
        "\n== cloud timing model (Xeon E7-8860v3, {}x speedup, {} s round-trip) ==",
        cloud.speedup, cloud.comm_overhead_s
    );
    for (device, &t) in online_times.iter().enumerate() {
        println!(
            "device {device}: online {t:.0} s -> cloud {:.1} s",
            cloud.cloud_time_s(t)
        );
    }
}
