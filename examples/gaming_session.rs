//! A five-minute PubG Mobile session compared across all three
//! governors of the paper's §V: stock `schedutil`, Int. QoS PM
//! (Pathania et al., DAC 2014) and the trained Next agent — with a live
//! 20-second progress readout.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example gaming_session
//! ```

use next_mpsoc::governors::{Governor, IntQosPm, Schedutil};
use next_mpsoc::mpsoc::{Soc, SocConfig};
use next_mpsoc::next_core::NextConfig;
use next_mpsoc::simkit::experiment::train_next_for_app;
use next_mpsoc::simkit::{Engine, Summary, Trace};
use next_mpsoc::workload::{SessionPlan, SessionSim};

const SESSION_S: f64 = 300.0;
const SEED: u64 = 2024;

fn run_with_progress(gov: &mut dyn Governor) -> Summary {
    let engine = Engine::new();
    let mut soc = Soc::new(SocConfig::exynos9810());
    let mut session = SessionSim::new(SessionPlan::single("pubg", SESSION_S), SEED);
    gov.reset();
    let mut trace = Trace::new();
    println!("--- {} ---", gov.name());
    for chunk in 0..15 {
        let out = engine.run(&mut soc, gov, &mut session, 20.0);
        for s in out.trace.samples() {
            trace.push(*s);
        }
        let s = soc.state();
        println!(
            "  t={:3}s  fps {:4.1}  power {:4.2} W  big {:4.0} MHz  gpu {:3.0} MHz  Tbig {:4.1} C",
            (chunk + 1) * 20,
            s.fps,
            s.power_w,
            f64::from(s.freq_khz[0]) / 1000.0,
            f64::from(s.freq_khz[2]) / 1000.0,
            s.temp_hot_c
        );
    }
    trace.summary()
}

fn main() {
    println!("== 5-minute PubG Mobile session: schedutil vs Int. QoS PM vs Next ==\n");

    let sched = run_with_progress(&mut Schedutil::new());
    let qos = run_with_progress(&mut IntQosPm::new());

    println!("\ntraining Next on pubg (one-time) ...");
    let outcome = train_next_for_app("pubg", NextConfig::paper(), 7, 1_200.0);
    println!(
        "trained {:.0} simulated s, {} Q-states\n",
        outcome.training_time_s,
        outcome.agent.table().len()
    );
    let mut agent = outcome.agent;
    let next = run_with_progress(&mut agent);

    println!("\n== summary (5 min PubG) ==");
    for (name, s) in [("schedutil", &sched), ("int-qos-pm", &qos), ("next", &next)] {
        println!(
            "  {name:11}: {:.2} W avg | {:.1} fps | peak big {:.1} C | peak device {:.1} C",
            s.avg_power_w, s.avg_fps, s.peak_temp_hot_c, s.peak_temp_device_c
        );
    }
    println!(
        "\nNext saves {:.1} % vs schedutil (paper: 40.95 %) and {:.1} % vs Int. QoS PM",
        next.power_saving_vs(&sched),
        next.power_saving_vs(&qos)
    );
}
