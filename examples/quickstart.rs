//! Quickstart: build the simulated Note 9, train Next briefly on one
//! application, and compare a session against the stock `schedutil`
//! governor.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use next_mpsoc::governors::Schedutil;
use next_mpsoc::next_core::NextConfig;
use next_mpsoc::simkit::experiment::{evaluate_governor, train_next_for_app};
use next_mpsoc::workload::SessionPlan;

fn main() {
    println!("== next-mpsoc quickstart ==");
    println!("platform: simulated Exynos 9810 (4x M3 big + 4x A55 LITTLE + Mali-G72),");
    println!("ambient 21 C, 60 Hz display\n");

    // 1. Baseline: stock schedutil on a 90 s Facebook session.
    let plan = SessionPlan::single("facebook", 90.0);
    let sched = evaluate_governor(&mut Schedutil::new(), &plan, 42);
    println!(
        "schedutil : {:.2} W avg, {:.1} fps avg, peak big-CPU {:.1} C",
        sched.summary.avg_power_w, sched.summary.avg_fps, sched.summary.peak_temp_hot_c
    );

    // 2. Train Next once on the app (the paper's one-time on-device
    //    training, ~minutes of simulated time).
    println!("\ntraining Next on facebook ...");
    let outcome = train_next_for_app("facebook", NextConfig::paper(), 7, 600.0);
    println!(
        "trained in {:.0} simulated s (converged: {}), {} Q-states learned",
        outcome.training_time_s,
        outcome.converged,
        outcome.agent.table().len()
    );

    // 3. Evaluate the trained agent on the *same* seeded session.
    let mut agent = outcome.agent;
    let next = evaluate_governor(&mut agent, &plan, 42);
    println!(
        "next      : {:.2} W avg, {:.1} fps avg, peak big-CPU {:.1} C",
        next.summary.avg_power_w, next.summary.avg_fps, next.summary.peak_temp_hot_c
    );

    println!(
        "\npower saving vs schedutil: {:.1} % (paper reports 37.05 % for Facebook)",
        next.summary.power_saving_vs(&sched.summary)
    );
    println!(
        "peak big-CPU temperature reduction: {:.1} % of the rise above ambient",
        next.summary.hot_temp_reduction_vs(&sched.summary, 21.0)
    );
}
