//! `next-sim` — command-line front end for the simulated platform.
//!
//! ```text
//! next-sim run     --app <name> --governor <schedutil|intqos|next|performance|powersave|ondemand>
//!                  [--duration <s>] [--seed <n>] [--train-budget <s>] [--table <file>]
//! next-sim train   --app <name> [--budget <s>] [--seed <n>] [--out <file>]
//! next-sim compare --app <name> [--duration <s>] [--seed <n>]
//! next-sim sweep   [--apps <a,b,..|all>] [--governors <g,h,..>] [--seeds <n,m,..>]
//!                  [--duration <s>] [--train-budget <s>] [--workers <n>]
//! next-sim perf    [--quick] [--out <BENCH.json>] [--baseline <file>]
//!                  [--min-ratio <f>] [--workers <n>]
//! next-sim fleet   --devices <D> --rounds <R> --seed <S> [--app <name>]
//!                  [--round-budget <s>] [--quick] [--workers <n>] [--out <fleet.json>]
//! next-sim campaign --devices <D> --rounds <R> --seed <S> [--checkpoint <dir> [--resume]]
//!                  [--stop-after <n>] [--shard-size <n>] [--platform <name>[,<name>..]]
//!                  [--quick] [--workers <n>] [--out <campaign.json>]
//! next-sim day     [--persona <p,q,..>] [--governors <g,h,..>] [--seed <n>|--seeds <n,m,..>]
//!                  [--pickups <n>] [--day-length <s>] [--train-budget <s>]
//!                  [--platform <name>] [--quick] [--workers <n>] [--out <day.json>]
//!                  [--trace <day.trace>] [--report <day.html>]
//! next-sim replay  --trace <day.trace> [--workers <n>]
//! next-sim bisect  --a <one.trace> --b <other.trace>
//! next-sim lint    [--format text|json] [--out <lint.json>] [--root <dir>]
//! next-sim apps
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use next_mpsoc::bench::{
    campaign as bench_campaign, day as bench_day, fleet as bench_fleet, json::Json, perf, report,
};
use next_mpsoc::governors::{self, IntQosPm, Schedutil};
use next_mpsoc::next_core::{NextAgent, NextConfig};
use next_mpsoc::qlearn::DenseQTable;
use next_mpsoc::simkit::campaign::{
    run_campaign_with, CampaignConfig, CampaignOptions, CampaignOutcome,
};
use next_mpsoc::simkit::experiment::{evaluate_governor, train_next_for_app};
use next_mpsoc::simkit::fleet::{self, FleetConfig};
use next_mpsoc::simkit::trace::{bisect, TickTrace};
use next_mpsoc::simkit::{day, sweep, Battery, PlatformPreset, StandardEvaluator, Summary};
use next_mpsoc::workload::{apps, DayPlan, DayPlanConfig, Persona, SessionPlan};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&flags),
        "train" => cmd_train(&flags),
        "compare" => cmd_compare(&flags),
        "sweep" => cmd_sweep(&flags),
        "perf" => cmd_perf(&flags),
        "fleet" => cmd_fleet(&flags),
        "campaign" => cmd_campaign(&flags),
        "day" => cmd_day(&flags),
        "replay" => cmd_replay(&flags),
        "bisect" => cmd_bisect(&flags),
        "lint" => cmd_lint(&flags),
        "personas" => {
            for &name in Persona::names() {
                let persona = Persona::by_name(name).expect("shipped persona");
                println!("{name}: apps=[{}]", persona.apps().join(", "));
            }
            Ok(())
        }
        "apps" => {
            println!("home");
            for app in apps::all() {
                println!("{}", app.name());
            }
            Ok(())
        }
        "platforms" => {
            for &name in PlatformPreset::names() {
                let preset = PlatformPreset::by_name(name).expect("shipped preset");
                let platform = &preset.soc.platform;
                let domains: Vec<String> = platform
                    .domains()
                    .iter()
                    .map(|d| format!("{}({})", d.name, d.table.len()))
                    .collect();
                println!(
                    "{name}: m={} actions={} domains=[{}]",
                    platform.n_domains(),
                    platform.action_count(),
                    domains.join(", ")
                );
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("error: unknown command '{other}'\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        // Runtime failures (a lint finding, a tripped perf gate, a replay
        // divergence) are not usage errors: keep the log readable.
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "next-sim: simulate DVFS governors on the Exynos 9810 platform

USAGE:
  next-sim run     --app <name> --governor <gov> [--duration <s>] [--seed <n>]
                   [--train-budget <s>] [--table <file.qtable>]
  next-sim train   --app <name> [--budget <s>] [--seed <n>] [--out <file.qtable>]
  next-sim compare --app <name> [--duration <s>] [--seed <n>]
  next-sim sweep   [--apps <a,b,..|all>] [--governors <g,h,..>] [--seeds <n,m,..>]
                   [--duration <s>] [--train-budget <s>] [--workers <n>]
                   [--platform <name>]
  next-sim perf    [--quick] [--out <BENCH.json>] [--baseline <file>]
                   [--min-ratio <f>] [--workers <n>] [--platform <name>]
  next-sim fleet   [--devices <D>] [--rounds <R>] [--seed <S>] [--app <name>]
                   [--round-budget <s>] [--quick] [--workers <n>] [--out <fleet.json>]
                   [--platform <name>[,<name>..]]
  next-sim campaign [--devices <D>] [--rounds <R>] [--seed <S>]
                   [--checkpoint <dir> [--resume]] [--stop-after <n>]
                   [--shard-size <n>] [--platform <name>[,<name>..]]
                   [--quick] [--workers <n>] [--out <campaign.json>]
  next-sim day     [--persona <p,q,..>] [--governors <g,h,..>] [--seed <n>|--seeds <n,m,..>]
                   [--pickups <n>] [--day-length <s>] [--train-budget <s>]
                   [--platform <name>] [--quick] [--workers <n>] [--out <day.json>]
                   [--trace <day.trace>] [--report <day.html>]
  next-sim replay  --trace <day.trace> [--workers <n>]
  next-sim bisect  --a <one.trace> --b <other.trace>
  next-sim lint    [--format text|json] [--out <lint.json>] [--root <dir>]
  next-sim apps
  next-sim platforms
  next-sim personas

governors: schedutil | intqos | next | performance | powersave | ondemand
platforms: exynos9810 (default, m=3, 9 actions) | exynos9820 (m=4, 12 actions)
personas: gamer | socialite | commuter | reader

sweep runs the full governor x app x seed grid in parallel (defaults:
the six paper apps, schedutil+intqos+next, seed 1000, paper session
lengths, all CPU cores) and prints a deterministic report — identical
bytes for any --workers value.

perf runs a fixed measurement grid plus a Q-table backend
microbenchmark and writes a machine-readable BENCH.json (--out,
default stdout). With --baseline it exits non-zero when aggregate
throughput falls below --min-ratio (default 0.5) of the baseline's
ticks_per_sec — the CI perf gate. --quick selects the small smoke
grid.

fleet simulates federated training (§IV-C at scale): D heterogeneous
devices (per-device SoC power/thermal bins and users) train the app
locally for R rounds, the cloud streaming-merges their Q-tables each
round, and the merged table is scored on a held-out session grid.
--platform takes a comma list: devices are assigned platforms
round-robin and the cloud keeps one federated table per platform. The
JSON artifact (--out, default stdout) is byte-identical for a fixed
--seed across any --workers value (schema v2 for the default
homogeneous exynos9810 fleet, v3 otherwise). --quick shortens the
local rounds for CI smoke runs.

campaign scales the federated loop to whole days: every round each
device lives its persona's full day (pickups, session plans,
screen-off cooling) on its own SoC bin while training online, uploads
its binary Q-table delta (the NXQT codec — uplink cost is the actual
encoded bytes), and the cloud merges per (platform, app). Devices run
in shards so memory stays bounded at any fleet size. With --checkpoint
a versioned NXCP checkpoint is written after every round; --resume
continues a killed campaign from it, and the final campaign.json
(schema v6: rounds ledger, persona x platform x thermal-bin cohort
quantiles, merged-table artifacts) is byte-identical to an
uninterrupted run for any --workers value. --stop-after N exits
gracefully at a round boundary (the kill half of kill-and-resume);
--quick shrinks days for CI smoke runs. See docs/CAMPAIGN.md.

day simulates a whole waking day (default: 52 pickups, the paper's
Deloitte statistic) as one continuous device: persona-driven app
choices, Deloitte session lengths, screen-off gaps that keep the
thermal model ticking, and per-app Q-tables trained once and reused
(SS IV-B). Every governor replays the identical day, so the JSON
artifact's deltas section is a true battery-day comparison (defaults:
persona gamer, governors next+schedutil, seed 42). Byte-identical
across --workers values. --quick compresses sessions 6x over a 2 h
day for CI smoke runs.

day can also record per-tick traces: --trace writes the first
(plan, governor) cell's binary trace (docs/TRACE_FORMAT.md) and
--report renders every cell into one self-contained HTML viewer
(timeline, thermal traces, per-session PPDW, action heatmap).

replay re-executes a recorded day from the trace's metadata alone and
exits non-zero unless the regenerated trace is byte-identical to the
file — the repository's determinism gate. bisect compares two traces
and reports the first divergent tick with a field-level diff.

lint statically checks every non-vendored .rs file of the workspace
against the determinism rule catalog (docs/LINT.md): ambient time and
entropy, unordered iteration in artifact-producing crates,
completion-order harvesting, panics in library code, unsafe blocks.
Exemptions need an inline `// qlint::allow(RULE, reason = \"...\")`
marker. Exits non-zero on any unsuppressed finding; --format json
writes the versioned lint.json CI archives. Deterministic: identical
bytes for identical trees.

sweep/perf/fleet/campaign/day accept --platform to run on a different
SoC preset; run/train/compare always use the paper's exynos9810.";

type Flags = HashMap<String, String>;

/// Flags that take no value; every other flag still requires one, so a
/// forgotten value stays a hard usage error.
const BOOLEAN_FLAGS: [&str; 2] = ["quick", "resume"];

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got '{flag}'"));
        };
        let value = if BOOLEAN_FLAGS.contains(&name) {
            "true".to_owned()
        } else {
            it.next()
                .ok_or_else(|| format!("--{name} needs a value"))?
                .clone()
        };
        flags.insert(name.to_owned(), value);
    }
    Ok(flags)
}

fn get_f64(flags: &Flags, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: '{v}' is not a number")),
    }
}

fn get_u64(flags: &Flags, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: '{v}' is not an integer")),
    }
}

fn require_platform(flags: &Flags) -> Result<PlatformPreset, String> {
    match flags.get("platform") {
        None => Ok(PlatformPreset::default()),
        Some(name) => PlatformPreset::by_name(name).ok_or_else(|| {
            format!(
                "unknown platform '{name}' (available: {})",
                PlatformPreset::names().join(", ")
            )
        }),
    }
}

fn require_app(flags: &Flags) -> Result<String, String> {
    let app = flags.get("app").ok_or("--app is required")?;
    if apps::by_name(app).is_none() {
        return Err(format!("unknown app '{app}' (see `next-sim apps`)"));
    }
    Ok(app.clone())
}

fn print_summary(label: &str, s: &Summary) {
    let battery = Battery::note9();
    println!(
        "{label:12} {:6.2} W avg | {:5.1} fps | peak big {:5.1} C, device {:5.1} C | \
         {:6.0} J ({:.2} % battery)",
        s.avg_power_w,
        s.avg_fps,
        s.peak_temp_hot_c,
        s.peak_temp_device_c,
        s.energy_j,
        battery.drain_percent(s.energy_j)
    );
}

fn make_next_agent(app: &str, flags: &Flags) -> Result<NextAgent, String> {
    if let Some(path) = flags.get("table") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let table = DenseQTable::decode(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        return Ok(NextAgent::with_table(NextConfig::paper(), table, false));
    }
    let budget = get_f64(flags, "train-budget", 600.0)?;
    let seed = get_u64(flags, "seed", 7)?;
    eprintln!("training next on {app} (budget {budget} simulated s) ...");
    let out = train_next_for_app(app, NextConfig::paper(), seed, budget);
    eprintln!(
        "trained {:.0} s (converged: {}), {} states",
        out.training_time_s,
        out.converged,
        out.agent.table().len()
    );
    Ok(out.agent)
}

fn cmd_run(flags: &Flags) -> Result<(), String> {
    let app = require_app(flags)?;
    let duration = get_f64(flags, "duration", SessionPlan::paper_session_length_s(&app))?;
    let seed = get_u64(flags, "seed", 1000)?;
    let plan = SessionPlan::single(&app, duration);
    let gov_name = flags.get("governor").map_or("schedutil", String::as_str);

    let summary = if gov_name == "next" {
        let mut agent = make_next_agent(&app, flags)?;
        evaluate_governor(&mut agent, &plan, seed).summary
    } else {
        let mut governor =
            governors::by_name(gov_name).ok_or_else(|| format!("unknown governor '{gov_name}'"))?;
        evaluate_governor(governor.as_mut(), &plan, seed).summary
    };
    println!("app {app}, {duration:.0} s session, seed {seed}");
    print_summary(gov_name, &summary);
    Ok(())
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let app = require_app(flags)?;
    let budget = get_f64(flags, "budget", 600.0)?;
    let seed = get_u64(flags, "seed", 7)?;
    let out = train_next_for_app(&app, NextConfig::paper(), seed, budget);
    println!(
        "trained {app}: {:.0} simulated s, converged: {}, {} states, {} visits",
        out.training_time_s,
        out.converged,
        out.agent.table().len(),
        out.agent.table().total_visits()
    );
    if let Some(path) = flags.get("out") {
        std::fs::write(path, out.agent.table().encode())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("table written to {path}");
    }
    Ok(())
}

/// Parses the comma-separated `--seeds` list, falling back to
/// `default` when the flag is absent.
fn parse_seeds(flags: &Flags, default: Vec<u64>) -> Result<Vec<u64>, String> {
    match flags.get("seeds") {
        None => Ok(default),
        Some(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("--seeds: '{s}' is not an integer"))
            })
            .collect(),
    }
}

fn parse_list(flags: &Flags, name: &str, default: Vec<String>) -> Vec<String> {
    match flags.get(name) {
        None => default,
        Some(v) => v
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect(),
    }
}

fn cmd_sweep(flags: &Flags) -> Result<(), String> {
    // `apps::all()` is exactly the paper's Fig. 7 grid; `all` also
    // includes the home screen.
    let paper_apps: Vec<String> = apps::all().iter().map(|a| a.name().to_owned()).collect();
    let apps_list: Vec<String> = match flags.get("apps").map(String::as_str) {
        Some("all") => std::iter::once("home".to_owned())
            .chain(paper_apps)
            .collect(),
        _ => parse_list(flags, "apps", paper_apps),
    };
    for app in &apps_list {
        if apps::by_name(app).is_none() {
            return Err(format!("unknown app '{app}' (see `next-sim apps`)"));
        }
    }
    let default_governors = ["schedutil", "intqos", "next"].map(str::to_owned).to_vec();
    let governors = parse_list(flags, "governors", default_governors);
    for gov in &governors {
        if !StandardEvaluator::GOVERNORS.contains(&gov.as_str()) {
            return Err(format!("unknown governor '{gov}'"));
        }
    }
    let seeds = parse_seeds(flags, vec![1000])?;
    let mut duration = None;
    if flags.contains_key("duration") {
        let d = get_f64(flags, "duration", 0.0)?;
        // Shorter than one 25 ms tick would produce an empty trace,
        // which cannot be summarised.
        if !d.is_finite() || d < 0.025 {
            return Err(format!("--duration must be at least 0.025 s, got {d}"));
        }
        duration = Some(d);
    }
    let train_budget = get_f64(
        flags,
        "train-budget",
        StandardEvaluator::BASE_TRAIN_BUDGET_S,
    )?;
    let workers = usize::try_from(get_u64(flags, "workers", sweep::default_workers() as u64)?)
        .map_err(|_| "--workers out of range".to_owned())?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_owned());
    }

    let preset = require_platform(flags)?;
    let cells = sweep::grid(&apps_list, &governors, &seeds, duration);
    eprintln!(
        "sweeping {} cells ({} apps x {} governors x {} seeds) on {workers} workers, \
         platform {} ...",
        cells.len(),
        apps_list.len(),
        governors.len(),
        seeds.len(),
        preset.name
    );
    // qlint::allow(ND01, reason = "wall-clock progress reporting on stderr; artifacts never contain it")
    let started = std::time::Instant::now();
    let evaluator = StandardEvaluator::prepare_on(&cells, train_budget, workers, preset);
    let rows = sweep::run_cells(&cells, workers, |cell| evaluator.eval(cell));
    eprintln!(
        "sweep finished in {:.1} s wall clock",
        started.elapsed().as_secs_f64()
    );
    print!("{}", sweep::report(&rows));
    Ok(())
}

fn cmd_perf(flags: &Flags) -> Result<(), String> {
    let mut config = if flags.contains_key("quick") {
        perf::PerfConfig::quick()
    } else {
        perf::PerfConfig::full()
    };
    config.platform = require_platform(flags)?.name;
    if flags.contains_key("workers") {
        let workers = usize::try_from(get_u64(flags, "workers", config.workers as u64)?)
            .map_err(|_| "--workers out of range".to_owned())?;
        if workers == 0 {
            return Err("--workers must be at least 1".to_owned());
        }
        config.workers = workers;
    }
    let min_ratio = get_f64(flags, "min-ratio", 0.5)?;
    if !(min_ratio > 0.0 && min_ratio.is_finite()) {
        return Err(format!("--min-ratio must be positive, got {min_ratio}"));
    }

    eprintln!(
        "perf: {} grid on {}, {} apps x {} governors x {} seeds, {} workers ...",
        config.mode,
        config.platform,
        config.apps.len(),
        config.governors.len(),
        config.seeds.len(),
        config.workers
    );
    let report = perf::run(&config);
    eprintln!(
        "perf: {} cells in {:.2} s (train {:.2} s), {:.0} ticks/s aggregate",
        report.cells.len(),
        report.grid_wall_s,
        report.train_wall_s,
        perf::throughput_ticks_per_sec(&report)
    );
    if let Some(speedup) = report.dense_speedup() {
        eprintln!("perf: dense backend {speedup:.2}x faster than hash on argmax+update");
    }

    let text = report.to_json().render();
    debug_assert!(Json::parse(&text).is_ok(), "BENCH.json must be valid JSON");
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{text}\n"))
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("perf: wrote {path}");
        }
        None => println!("{text}"),
    }

    if let Some(baseline_path) = flags.get("baseline") {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading {baseline_path}: {e}"))?;
        let verdict = perf::check_floor(&report, &baseline, min_ratio)
            .map_err(|e| format!("perf gate: {e}"))?;
        eprintln!("perf gate: {verdict}");
    }
    Ok(())
}

fn cmd_fleet(flags: &Flags) -> Result<(), String> {
    let app = match flags.get("app") {
        None => "facebook".to_owned(),
        Some(app) => {
            if apps::by_name(app).is_none() {
                return Err(format!("unknown app '{app}' (see `next-sim apps`)"));
            }
            app.clone()
        }
    };
    let devices = usize::try_from(get_u64(flags, "devices", 16)?)
        .map_err(|_| "--devices out of range".to_owned())?;
    let rounds = usize::try_from(get_u64(flags, "rounds", 5)?)
        .map_err(|_| "--rounds out of range".to_owned())?;
    if devices == 0 || rounds == 0 {
        return Err("--devices and --rounds must be at least 1".to_owned());
    }
    let seed = get_u64(flags, "seed", 42)?;
    let quick = flags.contains_key("quick");
    let mut config = if quick {
        FleetConfig::quick(&app, devices, rounds, seed)
    } else {
        FleetConfig::new(&app, devices, rounds, seed)
    };
    if let Some(list) = flags.get("platform") {
        let platforms: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect();
        if platforms.is_empty() {
            return Err("--platform needs at least one name".to_owned());
        }
        for (i, name) in platforms.iter().enumerate() {
            if PlatformPreset::by_name(name).is_none() {
                return Err(format!(
                    "unknown platform '{name}' (available: {})",
                    PlatformPreset::names().join(", ")
                ));
            }
            if platforms[..i].contains(name) {
                return Err(format!("--platform lists '{name}' twice"));
            }
        }
        config = config.with_platforms(platforms);
    }
    if flags.contains_key("round-budget") {
        let budget = get_f64(flags, "round-budget", config.round_budget_s)?;
        if !(budget > 0.0 && budget.is_finite()) {
            return Err(format!("--round-budget must be positive, got {budget}"));
        }
        config.round_budget_s = budget;
    }
    let workers = usize::try_from(get_u64(flags, "workers", sweep::default_workers() as u64)?)
        .map_err(|_| "--workers out of range".to_owned())?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_owned());
    }

    eprintln!(
        "fleet: {devices} devices x {rounds} rounds on {app} ({}), \
         {:.0} s local budget per round, {workers} workers ...",
        config.platforms.join("+"),
        config.round_budget_s
    );
    // qlint::allow(ND01, reason = "wall-clock progress reporting on stderr; artifacts never contain it")
    let started = std::time::Instant::now();
    let report = fleet::run_fleet(&config, workers);
    eprintln!(
        "fleet: finished in {:.1} s wall clock; final tables {} states / {} visits",
        started.elapsed().as_secs_f64(),
        report.total_states(),
        report.total_visits()
    );
    for round in &report.rounds {
        eprintln!(
            "fleet: round {}: {} states, {:.1} fps / {:.2} W / ppdw {:.3} on held-out grid, \
             modeled round time {:.0} s ({:.0} s comm)",
            round.round,
            round.states,
            round.eval.avg_fps,
            round.eval.avg_power_w,
            round.eval.ppdw,
            round.round_time_s,
            round.comm_s
        );
    }

    let mode = if quick { "quick" } else { "full" };
    let text = bench_fleet::fleet_to_json(&report, mode).render();
    debug_assert!(
        bench_fleet::parse_document(&text).is_ok(),
        "fleet.json must round-trip its own schema"
    );
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{text}\n"))
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("fleet: wrote {path}");
        }
        None => println!("{text}"),
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn cmd_campaign(flags: &Flags) -> Result<(), String> {
    let devices = usize::try_from(get_u64(flags, "devices", 64)?)
        .map_err(|_| "--devices out of range".to_owned())?;
    let rounds = usize::try_from(get_u64(flags, "rounds", 2)?)
        .map_err(|_| "--rounds out of range".to_owned())?;
    if devices == 0 || rounds == 0 {
        return Err("--devices and --rounds must be at least 1".to_owned());
    }
    let seed = get_u64(flags, "seed", 42)?;
    let quick = flags.contains_key("quick");
    let mut config = if quick {
        CampaignConfig::quick(devices, rounds, seed)
    } else {
        CampaignConfig::new(devices, rounds, seed)
    };
    if let Some(list) = flags.get("platform") {
        let platforms: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect();
        if platforms.is_empty() {
            return Err("--platform needs at least one name".to_owned());
        }
        for (i, name) in platforms.iter().enumerate() {
            if PlatformPreset::by_name(name).is_none() {
                return Err(format!(
                    "unknown platform '{name}' (available: {})",
                    PlatformPreset::names().join(", ")
                ));
            }
            if platforms[..i].contains(name) {
                return Err(format!("--platform lists '{name}' twice"));
            }
        }
        let refs: Vec<&str> = platforms.iter().map(String::as_str).collect();
        config = config.with_platforms(&refs);
    }
    if flags.contains_key("shard-size") {
        let shard = usize::try_from(get_u64(flags, "shard-size", config.shard_size as u64)?)
            .map_err(|_| "--shard-size out of range".to_owned())?;
        if shard == 0 {
            return Err("--shard-size must be at least 1".to_owned());
        }
        config.shard_size = shard;
    }
    let workers = usize::try_from(get_u64(flags, "workers", sweep::default_workers() as u64)?)
        .map_err(|_| "--workers out of range".to_owned())?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_owned());
    }
    let options = CampaignOptions {
        checkpoint_dir: flags.get("checkpoint").map(PathBuf::from),
        resume: flags.contains_key("resume"),
        stop_after: if flags.contains_key("stop-after") {
            let n = usize::try_from(get_u64(flags, "stop-after", 0)?)
                .map_err(|_| "--stop-after out of range".to_owned())?;
            if n == 0 {
                return Err("--stop-after must be at least 1".to_owned());
            }
            Some(n)
        } else {
            None
        },
    };
    if options.resume && options.checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint <dir>".to_owned());
    }
    if options.stop_after.is_some() && options.checkpoint_dir.is_none() {
        return Err(
            "--stop-after needs --checkpoint <dir> (there is nothing to resume from \
                    otherwise)"
                .to_owned(),
        );
    }

    eprintln!(
        "campaign: {devices} devices x {rounds} rounds on {} ({} cohorts, shard {}), \
         {workers} workers{} ...",
        config.platforms.join("+"),
        config.cohort_count(),
        config.shard_size,
        if options.resume { ", resuming" } else { "" }
    );
    // qlint::allow(ND01, reason = "wall-clock progress reporting on stderr; artifacts never contain it")
    let started = std::time::Instant::now();
    let report = match run_campaign_with(&config, workers, &options)? {
        CampaignOutcome::Paused { rounds_done } => {
            eprintln!(
                "campaign: paused after {rounds_done}/{rounds} round(s), checkpoint on disk; \
                 rerun with --resume to continue"
            );
            return Ok(());
        }
        CampaignOutcome::Complete(report) => report,
    };
    eprintln!(
        "campaign: finished in {:.1} s wall clock; {} device-days, {} merged tables",
        started.elapsed().as_secs_f64(),
        report.device_days(),
        report.tables.len()
    );
    for round in &report.rounds {
        eprintln!(
            "campaign: round {}: {} states / {} visits merged, {} B up / {} B down \
             ({:.1} s comm)",
            round.round,
            round.states,
            round.visits,
            round.uplink_bytes,
            round.downlink_bytes,
            round.comm_s
        );
    }

    let mode = if quick { "quick" } else { "full" };
    let text = bench_campaign::campaign_to_json(&report, mode).render();
    debug_assert!(
        bench_fleet::parse_document(&text).is_ok(),
        "campaign.json must round-trip its own schema"
    );
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{text}\n"))
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("campaign: wrote {path}");
        }
        None => println!("{text}"),
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn cmd_day(flags: &Flags) -> Result<(), String> {
    let personas = parse_list(flags, "persona", vec!["gamer".to_owned()]);
    for persona in &personas {
        if Persona::by_name(persona).is_none() {
            return Err(format!(
                "unknown persona '{persona}' (available: {})",
                Persona::names().join(", ")
            ));
        }
    }
    let default_governors = ["next", "schedutil"].map(str::to_owned).to_vec();
    let governors = parse_list(flags, "governors", default_governors);
    for gov in &governors {
        if !StandardEvaluator::GOVERNORS.contains(&gov.as_str()) {
            return Err(format!("unknown governor '{gov}'"));
        }
    }
    let seeds = parse_seeds(flags, vec![get_u64(flags, "seed", 42)?])?;
    let quick = flags.contains_key("quick");
    let mut plan_cfg = if quick {
        DayPlanConfig::quick()
    } else {
        DayPlanConfig::paper()
    };
    if flags.contains_key("pickups") {
        let pickups = get_u64(flags, "pickups", u64::from(plan_cfg.pickups))?;
        plan_cfg.pickups = u32::try_from(pickups).map_err(|_| "--pickups out of range")?;
        if plan_cfg.pickups == 0 {
            return Err("--pickups must be at least 1".to_owned());
        }
    }
    if flags.contains_key("day-length") {
        let len = get_f64(flags, "day-length", plan_cfg.day_length_s)?;
        if !(len > 0.0 && len.is_finite()) {
            return Err(format!("--day-length must be positive, got {len}"));
        }
        plan_cfg.day_length_s = len;
    }
    // Same feasibility rule DayPlan::generate enforces, surfaced as a
    // usage error instead of a panic.
    plan_cfg.validate()?;
    let train_budget = get_f64(
        flags,
        "train-budget",
        if quick {
            120.0
        } else {
            StandardEvaluator::BASE_TRAIN_BUDGET_S
        },
    )?;
    if !(train_budget > 0.0 && train_budget.is_finite()) {
        return Err(format!(
            "--train-budget must be positive, got {train_budget}"
        ));
    }
    let preset = require_platform(flags)?;
    let workers = usize::try_from(get_u64(flags, "workers", sweep::default_workers() as u64)?)
        .map_err(|_| "--workers out of range".to_owned())?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_owned());
    }

    let plans: Vec<DayPlan> = personas
        .iter()
        .flat_map(|persona| {
            let persona = Persona::by_name(persona).expect("validated above");
            seeds
                .iter()
                .map(move |&seed| DayPlan::generate(&persona, &plan_cfg, seed))
                .collect::<Vec<_>>()
        })
        .collect();
    eprintln!(
        "day: {} plan(s) x {} governor(s) on {}: {} pickups over {:.1} h, {workers} workers ...",
        plans.len(),
        governors.len(),
        preset.name,
        plan_cfg.pickups,
        plan_cfg.day_length_s / 3_600.0
    );
    // qlint::allow(ND01, reason = "wall-clock progress reporting on stderr; artifacts never contain it")
    let started = std::time::Instant::now();
    // Tracing is opt-in: without --trace/--report the untraced path
    // runs and the recording hook compiles down to nothing.
    let tracing = flags.contains_key("trace") || flags.contains_key("report");
    let (reports, traces) = if tracing {
        let cells = day::run_days_traced(&plans, &governors, &preset, 1.0, train_budget, workers);
        let (reports, traces): (Vec<_>, Vec<_>) = cells.into_iter().unzip();
        (reports, Some(traces))
    } else {
        let reports = day::run_days(&plans, &governors, &preset, 1.0, train_budget, workers);
        (reports, None)
    };
    eprintln!(
        "day: finished in {:.1} s wall clock",
        started.elapsed().as_secs_f64()
    );
    if let Some(traces) = &traces {
        if let Some(path) = flags.get("trace") {
            // One file, one scenario: the first (plan, governor) cell.
            let trace = traces.first().expect("at least one cell");
            std::fs::write(path, trace.encode()).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "day: wrote {path} ({} ticks, cell {} seed {} under {})",
                trace.records.len(),
                trace.meta.persona,
                trace.meta.seed,
                trace.meta.governor
            );
        }
        if let Some(path) = flags.get("report") {
            let cells: Vec<(day::DayReport, TickTrace)> = reports
                .iter()
                .cloned()
                .zip(traces.iter().cloned())
                .collect();
            let html = report::day_html(&cells);
            std::fs::write(path, html).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("day: wrote {path} ({} cells)", cells.len());
        }
    }
    for report in &reports {
        eprintln!(
            "day: {} seed {} {:<10} | {:5.1} min screen-on over {} pickups | \
             {:6.0} J ({:5.2} % battery) | {:4.1} fps | peak {:4.1} C",
            report.plan.persona,
            report.plan.seed,
            report.governor,
            report.screen_on_s / 60.0,
            report.pickup_count(),
            report.energy_total_j(),
            report.battery_drain_pct,
            report.avg_fps,
            report.peak_temp_hot_c
        );
    }

    let mode = if quick { "quick" } else { "full" };
    let text = bench_day::days_to_json(&reports, mode).render();
    debug_assert!(
        bench_fleet::parse_document(&text).is_ok(),
        "day.json must round-trip its own schema"
    );
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{text}\n"))
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("day: wrote {path}");
        }
        None => println!("{text}"),
    }
    Ok(())
}

/// Reads and decodes a binary trace file.
fn read_trace(path: &str) -> Result<(Vec<u8>, TickTrace), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let trace = TickTrace::decode(&bytes).map_err(|e| format!("parsing {path}: {e}"))?;
    Ok((bytes, trace))
}

fn cmd_replay(flags: &Flags) -> Result<(), String> {
    let path = flags.get("trace").ok_or("--trace is required")?;
    let (bytes, recorded) = read_trace(path)?;
    let workers = usize::try_from(get_u64(flags, "workers", sweep::default_workers() as u64)?)
        .map_err(|_| "--workers out of range".to_owned())?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_owned());
    }
    eprintln!(
        "replay: {} ticks — {} day, seed {}, {} on {} ...",
        recorded.records.len(),
        recorded.meta.persona,
        recorded.meta.seed,
        recorded.meta.governor,
        recorded.meta.platform
    );
    // qlint::allow(ND01, reason = "wall-clock progress reporting on stderr; artifacts never contain it")
    let started = std::time::Instant::now();
    let (_report, replayed) = day::replay_day(&recorded.meta, workers)?;
    eprintln!(
        "replay: re-executed in {:.1} s wall clock",
        started.elapsed().as_secs_f64()
    );
    let replayed_bytes = replayed.encode();
    if replayed_bytes == bytes {
        println!(
            "replay: OK — {} ticks byte-identical to {path}",
            replayed.records.len()
        );
        return Ok(());
    }
    // Show where it went wrong before failing.
    let report = bisect(&recorded, &replayed);
    eprintln!("{}", report.render());
    Err(format!("replay diverged from {path}"))
}

fn cmd_bisect(flags: &Flags) -> Result<(), String> {
    let path_a = flags.get("a").ok_or("--a is required")?;
    let path_b = flags.get("b").ok_or("--b is required")?;
    let (_, trace_a) = read_trace(path_a)?;
    let (_, trace_b) = read_trace(path_b)?;
    let report = bisect(&trace_a, &trace_b);
    println!("{}", report.render());
    if report.is_identical() {
        Ok(())
    } else {
        Err(format!("{path_a} and {path_b} diverge"))
    }
}

fn cmd_lint(flags: &Flags) -> Result<(), String> {
    let root = flags.get("root").map_or(".", String::as_str);
    let format = flags.get("format").map_or("text", String::as_str);
    if !matches!(format, "text" | "json") {
        return Err(format!("--format must be 'text' or 'json', got '{format}'"));
    }
    let report = next_mpsoc::qlint::lint_workspace(std::path::Path::new(root))
        .map_err(|e| format!("walking {root}: {e}"))?;
    let text = match format {
        "json" => {
            let json = report.to_json().render();
            debug_assert!(Json::parse(&json).is_ok(), "lint.json must be valid JSON");
            format!("{json}\n")
        }
        _ => report.render_text(),
    };
    // The artifact (or text report) is written even when the gate
    // fails, so CI can archive the findings it is failing on.
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("lint: wrote {path}");
        }
        None => print!("{text}"),
    }
    if report.is_clean() {
        eprintln!(
            "lint: clean — {} file(s), {} suppression(s)",
            report.files_scanned, report.suppressed
        );
        Ok(())
    } else {
        // On JSON-to-file runs the findings are only in the artifact;
        // repeat them on stderr so the CI log names the lines.
        if flags.get("out").is_some() || format == "json" {
            eprint!("{}", report.render_text());
        }
        Err(format!("lint: {} finding(s)", report.findings.len()))
    }
}

fn cmd_compare(flags: &Flags) -> Result<(), String> {
    let app = require_app(flags)?;
    let duration = get_f64(flags, "duration", SessionPlan::paper_session_length_s(&app))?;
    let seed = get_u64(flags, "seed", 1000)?;
    let plan = SessionPlan::single(&app, duration);

    println!("app {app}, {duration:.0} s session, seed {seed}\n");
    let sched = evaluate_governor(&mut Schedutil::new(), &plan, seed).summary;
    print_summary("schedutil", &sched);
    if apps::is_game(&app) {
        let qos = evaluate_governor(&mut IntQosPm::new(), &plan, seed).summary;
        print_summary("int-qos-pm", &qos);
    }
    let mut agent = make_next_agent(&app, flags)?;
    let next = evaluate_governor(&mut agent, &plan, seed).summary;
    print_summary("next", &next);
    println!(
        "\nnext saves {:.1} % vs schedutil",
        next.power_saving_vs(&sched)
    );
    Ok(())
}
