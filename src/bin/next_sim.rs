//! `next-sim` — command-line front end for the simulated platform.
//!
//! ```text
//! next-sim run     --app <name> --governor <schedutil|intqos|next|performance|powersave|ondemand>
//!                  [--duration <s>] [--seed <n>] [--train-budget <s>] [--table <file>]
//! next-sim train   --app <name> [--budget <s>] [--seed <n>] [--out <file>]
//! next-sim compare --app <name> [--duration <s>] [--seed <n>]
//! next-sim apps
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use next_mpsoc::governors::{IntQosPm, Ondemand, Performance, Powersave, Schedutil};
use next_mpsoc::next_core::{NextAgent, NextConfig};
use next_mpsoc::qlearn::QTable;
use next_mpsoc::simkit::experiment::{evaluate_governor, train_next_for_app};
use next_mpsoc::simkit::{Battery, Summary};
use next_mpsoc::workload::{apps, SessionPlan};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&flags),
        "train" => cmd_train(&flags),
        "compare" => cmd_compare(&flags),
        "apps" => {
            println!("home");
            for app in apps::all() {
                println!("{}", app.name());
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "next-sim: simulate DVFS governors on the Exynos 9810 platform

USAGE:
  next-sim run     --app <name> --governor <gov> [--duration <s>] [--seed <n>]
                   [--train-budget <s>] [--table <file.qtable>]
  next-sim train   --app <name> [--budget <s>] [--seed <n>] [--out <file.qtable>]
  next-sim compare --app <name> [--duration <s>] [--seed <n>]
  next-sim apps

governors: schedutil | intqos | next | performance | powersave | ondemand";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got '{flag}'"));
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_owned(), value.clone());
    }
    Ok(flags)
}

fn get_f64(flags: &Flags, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: '{v}' is not a number")),
    }
}

fn get_u64(flags: &Flags, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: '{v}' is not an integer")),
    }
}

fn require_app(flags: &Flags) -> Result<String, String> {
    let app = flags.get("app").ok_or("--app is required")?;
    if apps::by_name(app).is_none() {
        return Err(format!("unknown app '{app}' (see `next-sim apps`)"));
    }
    Ok(app.clone())
}

fn print_summary(label: &str, s: &Summary) {
    let battery = Battery::note9();
    println!(
        "{label:12} {:6.2} W avg | {:5.1} fps | peak big {:5.1} C, device {:5.1} C | \
         {:6.0} J ({:.2} % battery)",
        s.avg_power_w,
        s.avg_fps,
        s.peak_temp_big_c,
        s.peak_temp_device_c,
        s.energy_j,
        battery.drain_percent(s.energy_j)
    );
}

fn make_next_agent(app: &str, flags: &Flags) -> Result<NextAgent, String> {
    if let Some(path) = flags.get("table") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let table = QTable::decode(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        return Ok(NextAgent::with_table(NextConfig::paper(), table, false));
    }
    let budget = get_f64(flags, "train-budget", 600.0)?;
    let seed = get_u64(flags, "seed", 7)?;
    eprintln!("training next on {app} (budget {budget} simulated s) ...");
    let out = train_next_for_app(app, NextConfig::paper(), seed, budget);
    eprintln!(
        "trained {:.0} s (converged: {}), {} states",
        out.training_time_s,
        out.converged,
        out.agent.table().len()
    );
    Ok(out.agent)
}

fn cmd_run(flags: &Flags) -> Result<(), String> {
    let app = require_app(flags)?;
    let duration = get_f64(flags, "duration", SessionPlan::paper_session_length_s(&app))?;
    let seed = get_u64(flags, "seed", 1000)?;
    let plan = SessionPlan::single(&app, duration);
    let gov_name = flags.get("governor").map_or("schedutil", String::as_str);

    let summary = match gov_name {
        "next" => {
            let mut agent = make_next_agent(&app, flags)?;
            evaluate_governor(&mut agent, &plan, seed).summary
        }
        "schedutil" => evaluate_governor(&mut Schedutil::new(), &plan, seed).summary,
        "intqos" => evaluate_governor(&mut IntQosPm::new(), &plan, seed).summary,
        "performance" => evaluate_governor(&mut Performance::new(), &plan, seed).summary,
        "powersave" => evaluate_governor(&mut Powersave::new(), &plan, seed).summary,
        "ondemand" => evaluate_governor(&mut Ondemand::new(), &plan, seed).summary,
        other => return Err(format!("unknown governor '{other}'")),
    };
    println!("app {app}, {duration:.0} s session, seed {seed}");
    print_summary(gov_name, &summary);
    Ok(())
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let app = require_app(flags)?;
    let budget = get_f64(flags, "budget", 600.0)?;
    let seed = get_u64(flags, "seed", 7)?;
    let out = train_next_for_app(&app, NextConfig::paper(), seed, budget);
    println!(
        "trained {app}: {:.0} simulated s, converged: {}, {} states, {} visits",
        out.training_time_s,
        out.converged,
        out.agent.table().len(),
        out.agent.table().total_visits()
    );
    if let Some(path) = flags.get("out") {
        std::fs::write(path, out.agent.table().encode())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("table written to {path}");
    }
    Ok(())
}

fn cmd_compare(flags: &Flags) -> Result<(), String> {
    let app = require_app(flags)?;
    let duration = get_f64(flags, "duration", SessionPlan::paper_session_length_s(&app))?;
    let seed = get_u64(flags, "seed", 1000)?;
    let plan = SessionPlan::single(&app, duration);

    println!("app {app}, {duration:.0} s session, seed {seed}\n");
    let sched = evaluate_governor(&mut Schedutil::new(), &plan, seed).summary;
    print_summary("schedutil", &sched);
    if apps::is_game(&app) {
        let qos = evaluate_governor(&mut IntQosPm::new(), &plan, seed).summary;
        print_summary("int-qos-pm", &qos);
    }
    let mut agent = make_next_agent(&app, flags)?;
    let next = evaluate_governor(&mut agent, &plan, seed).summary;
    print_summary("next", &next);
    println!("\nnext saves {:.1} % vs schedutil", next.power_saving_vs(&sched));
    Ok(())
}
