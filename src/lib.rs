//! **next-mpsoc** — a full-system reproduction of Dey et al., *"User
//! Interaction Aware Reinforcement Learning for Power and Thermal
//! Efficiency of CPU-GPU Mobile MPSoCs"* (DATE 2020), in Rust.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`mpsoc`] — the simulated Exynos 9810 platform (OPP ladders, power,
//!   RC thermal network, VSync frame pipeline, cluster-wise DVFS),
//! * [`workload`] — phase-based application models and the stochastic
//!   user-interaction process,
//! * [`governors`] — the baselines: stock `schedutil`, Pathania et
//!   al.'s Int. QoS PM, and classic reference governors,
//! * [`qlearn`] — the tabular Q-learning toolkit (tables, policies,
//!   quantisers, federated merging),
//! * [`next_core`] — **Next**, the paper's user-interaction-aware RL
//!   DVFS agent (frame window, PPDW metric, 9-action Q-learning),
//! * [`simkit`] — the closed-loop simulation engine, metrics, the
//!   §V evaluation protocol, the reusable trainer layer and the
//!   federated fleet simulator behind `next-sim fleet`,
//! * [`bench`](mod@bench) — the figure-reproduction protocol plus the
//!   machine-readable perf/fleet harnesses behind `next-sim perf` and
//!   `next-sim fleet` (the `BENCH.json`/`fleet.json` artifacts CI
//!   gates on and archives),
//! * [`qlint`] — the static determinism lint behind `next-sim lint`:
//!   a dep-free token scanner and rule engine that enforces the
//!   invariants of `docs/ARCHITECTURE.md` at the source line (see
//!   `docs/LINT.md` for the rule catalog).
//!
//! # Quickstart
//!
//! ```
//! use next_mpsoc::governors::Schedutil;
//! use next_mpsoc::simkit::experiment::evaluate_governor;
//! use next_mpsoc::workload::SessionPlan;
//!
//! // Measure the stock governor on a 30-second Facebook session.
//! let plan = SessionPlan::single("facebook", 30.0);
//! let result = evaluate_governor(&mut Schedutil::new(), &plan, 42);
//! assert!(result.summary.avg_power_w > 0.5);
//! ```
//!
//! See `examples/` for end-to-end scenarios (training Next, comparing
//! governors on a gaming session, a full synthetic day of usage, and
//! federated training across a device fleet) and `crates/bench` for the
//! binaries that regenerate every figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ::bench;
pub use governors;
pub use mpsoc;
pub use next_core;
pub use qlearn;
pub use qlint;
pub use simkit;
pub use workload;
