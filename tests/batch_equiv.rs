//! Property-based equivalence of the batched structure-of-arrays tick
//! kernel: for any cohort of 1–32 device lanes mixing both platform
//! presets, random baseline governors and random sessions, stepping the
//! lanes in lockstep through [`SocBatch`] must be bit-identical — per
//! lane — to running each device alone through the scalar engine.
//!
//! This is the contract that makes batching safe to wire underneath
//! the fleet trainer and the day runner: it is an *optimization*, never
//! an approximation.

use proptest::prelude::*;

use next_mpsoc::governors::by_name;
use next_mpsoc::mpsoc::soc::Soc;
use next_mpsoc::mpsoc::SocBatch;
use next_mpsoc::simkit::{BatchLane, Engine, PlatformPreset, RunOutcome, Trace};
use next_mpsoc::workload::{SessionPlan, SessionSim};

const PLATFORMS: [&str; 2] = ["exynos9810", "exynos9820"];
const GOVERNORS: [&str; 5] = [
    "schedutil",
    "intqos",
    "performance",
    "powersave",
    "ondemand",
];
const APPS: [&str; 3] = ["facebook", "youtube", "spotify"];

/// One generated lane: platform, governor, app, session seed.
type LaneSpec = (usize, usize, usize, u64);

fn empty_outcomes(n: usize) -> Vec<RunOutcome> {
    (0..n)
        .map(|_| RunOutcome {
            trace: Trace::new(),
            presented_frames: 0,
            repeated_vsyncs: 0,
        })
        .collect()
}

proptest! {
    /// Mixed-platform cohorts: lanes are grouped per platform (a batch
    /// shares one physics structure), each group is run batched, and
    /// every lane must match its scalar device in trace, summary and
    /// final observable state.
    #[test]
    fn batched_cohort_matches_scalar_per_lane(
        lanes in proptest::collection::vec(
            (0usize..2, 0usize..5, 0usize..3, 0u64..10_000),
            1..33,
        )
    ) {
        let engine = Engine::new();
        let duration_s = 3.0;
        for (pi, platform) in PLATFORMS.iter().enumerate() {
            let group: Vec<&LaneSpec> =
                lanes.iter().filter(|l| l.0 == pi).collect();
            if group.is_empty() {
                continue;
            }
            let config = PlatformPreset::by_name(platform).unwrap().soc;

            // Reference: each device alone on the scalar engine.
            let mut scalar_states = Vec::with_capacity(group.len());
            let scalar: Vec<RunOutcome> = group
                .iter()
                .map(|&&(_, gi, ai, seed)| {
                    let mut soc = Soc::new(config.clone());
                    let mut gov = by_name(GOVERNORS[gi]).unwrap();
                    let mut session = SessionSim::new(
                        SessionPlan::single(APPS[ai], duration_s),
                        seed,
                    );
                    let out = engine.run(
                        &mut soc,
                        gov.as_mut(),
                        &mut session,
                        duration_s,
                    );
                    scalar_states.push(soc.state());
                    out
                })
                .collect();

            // The same cohort in lockstep on the batched kernel.
            let mut batch = SocBatch::replicate(&config, group.len()).unwrap();
            let mut governors: Vec<_> = group
                .iter()
                .map(|&&(_, gi, _, _)| by_name(GOVERNORS[gi]).unwrap())
                .collect();
            let mut sessions: Vec<_> = group
                .iter()
                .map(|&&(_, _, ai, seed)| {
                    SessionSim::new(SessionPlan::single(APPS[ai], duration_s), seed)
                })
                .collect();
            let mut batch_lanes: Vec<BatchLane<'_>> = governors
                .iter_mut()
                .zip(sessions.iter_mut())
                .map(|(g, s)| BatchLane {
                    governor: g.as_mut(),
                    session: s,
                })
                .collect();
            let mut outcomes = empty_outcomes(group.len());
            engine.run_lanes_into(&mut batch, &mut batch_lanes, duration_s, &mut outcomes);

            for (l, spec) in group.iter().enumerate() {
                prop_assert_eq!(
                    &outcomes[l],
                    &scalar[l],
                    "lane {} ({:?}) trace diverged on {}",
                    l,
                    spec,
                    platform
                );
                prop_assert_eq!(
                    outcomes[l].trace.summary(),
                    scalar[l].trace.summary(),
                    "lane {} summary diverged on {}",
                    l,
                    platform
                );
                prop_assert!(
                    batch.state(l) == scalar_states[l],
                    "lane {} final SocState diverged on {}",
                    l,
                    platform
                );
            }
        }
    }

    /// A width-1 batch *is* the scalar device: the single-lane view of
    /// the kernel never observably differs from `Soc`.
    #[test]
    fn width_one_batch_is_the_scalar_device(
        pi in 0usize..2,
        gi in 0usize..5,
        ai in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let engine = Engine::new();
        let duration_s = 5.0;
        let config = PlatformPreset::by_name(PLATFORMS[pi]).unwrap().soc;

        let mut soc = Soc::new(config.clone());
        let mut gov = by_name(GOVERNORS[gi]).unwrap();
        let mut session =
            SessionSim::new(SessionPlan::single(APPS[ai], duration_s), seed);
        let scalar = engine.run(&mut soc, gov.as_mut(), &mut session, duration_s);

        let mut batch = SocBatch::replicate(&config, 1).unwrap();
        let mut gov = by_name(GOVERNORS[gi]).unwrap();
        let mut session =
            SessionSim::new(SessionPlan::single(APPS[ai], duration_s), seed);
        let mut lanes = [BatchLane {
            governor: gov.as_mut(),
            session: &mut session,
        }];
        let mut outcomes = empty_outcomes(1);
        engine.run_lanes_into(&mut batch, &mut lanes, duration_s, &mut outcomes);

        prop_assert_eq!(&outcomes[0], &scalar);
        prop_assert!(batch.state(0) == soc.state(), "final state diverged");
    }
}
