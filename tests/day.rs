//! Acceptance tests for the day-scale scenario engine.
//!
//! 1. **Worker-count invariance**: the rendered `day.json` document —
//!    the exact bytes `next-sim day` writes — is identical for any
//!    worker count (the sweep/fleet 1-vs-N guarantee extended to the
//!    day horizon).
//! 2. **Battery-day comparison**: `next` and `schedutil` replay the
//!    identical plan and produce a non-zero battery-drain delta.
//! 3. **Continuity**: the day runs on one device state — pickups start
//!    warm, and screen-off gaps burn idle (not zero) energy.

use next_mpsoc::bench::day::days_to_json;
use next_mpsoc::bench::fleet::parse_document;
use next_mpsoc::bench::json::Json;
use next_mpsoc::simkit::day::run_days;
use next_mpsoc::simkit::PlatformPreset;
use next_mpsoc::workload::{DayPlan, DayPlanConfig, Persona};

fn test_plans() -> Vec<DayPlan> {
    let cfg = DayPlanConfig {
        pickups: 6,
        day_length_s: 900.0,
        session_scale: 0.1,
        min_session_s: 15.0,
    };
    vec![
        DayPlan::generate(&Persona::gamer(), &cfg, 7),
        DayPlan::generate(&Persona::reader(), &cfg, 8),
    ]
}

fn governors() -> Vec<String> {
    vec!["next".to_owned(), "schedutil".to_owned()]
}

#[test]
fn day_json_is_byte_identical_across_worker_counts() {
    let plans = test_plans();
    let preset = PlatformPreset::default();
    let one = days_to_json(
        &run_days(&plans, &governors(), &preset, 1.0, 30.0, 1),
        "test",
    )
    .render();
    let many = days_to_json(
        &run_days(&plans, &governors(), &preset, 1.0, 30.0, 4),
        "test",
    )
    .render();
    assert_eq!(one, many, "day.json must not depend on parallelism");

    // And it is a valid current-schema document with the promised
    // sections.
    let doc = parse_document(&one).expect("day.json parses");
    assert_eq!(doc.schema, next_mpsoc::bench::perf::SCHEMA_VERSION);
    let day = doc.day.expect("day section");
    let runs = day.get("runs").and_then(Json::as_array).expect("runs");
    assert_eq!(runs.len(), 4, "2 plans x 2 governors");
    for run in runs {
        assert_eq!(run.get("pickups").and_then(Json::as_f64), Some(6.0));
        assert!(run.get("battery_drain_pct").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(run.get("energy_gap_j").and_then(Json::as_f64).unwrap() > 0.0);
    }
}

#[test]
fn governors_produce_a_battery_day_delta_on_the_same_plan() {
    let plans = vec![test_plans().remove(0)];
    let reports = run_days(
        &plans,
        &governors(),
        &PlatformPreset::default(),
        1.0,
        30.0,
        2,
    );
    let next = &reports[0];
    let sched = &reports[1];
    assert_eq!(next.governor, "next");
    assert_eq!(sched.governor, "schedutil");
    assert_eq!(next.plan, sched.plan, "both governors replay the same day");
    assert!(
        (next.battery_drain_pct - sched.battery_drain_pct).abs() > 1e-9,
        "battery-day drain delta must be non-zero: {} vs {}",
        next.battery_drain_pct,
        sched.battery_drain_pct
    );
    // Continuity: later pickups start above ambient on both days.
    for report in &reports {
        for s in &report.sessions[1..] {
            assert!(
                s.start_temp_hot_c > next_mpsoc::mpsoc::DEFAULT_AMBIENT_C,
                "pickup started cold"
            );
        }
    }
}

#[test]
fn day_seed_and_persona_change_the_document() {
    let cfg = DayPlanConfig {
        pickups: 3,
        day_length_s: 400.0,
        session_scale: 0.1,
        min_session_s: 15.0,
    };
    let preset = PlatformPreset::default();
    let govs = vec!["schedutil".to_owned()];
    let render = |plan: DayPlan| {
        days_to_json(&run_days(&[plan], &govs, &preset, 1.0, 30.0, 2), "test").render()
    };
    let a = render(DayPlan::generate(&Persona::gamer(), &cfg, 1));
    let b = render(DayPlan::generate(&Persona::gamer(), &cfg, 2));
    let c = render(DayPlan::generate(&Persona::commuter(), &cfg, 1));
    assert_ne!(a, b, "seed must change the day");
    assert_ne!(a, c, "persona must change the day");
}

#[test]
fn day_runs_on_the_non_paper_platform() {
    let cfg = DayPlanConfig {
        pickups: 3,
        day_length_s: 400.0,
        session_scale: 0.1,
        min_session_s: 15.0,
    };
    let plans = vec![DayPlan::generate(&Persona::socialite(), &cfg, 4)];
    let preset = PlatformPreset::by_name("exynos9820").expect("shipped preset");
    let reports = run_days(&plans, &governors(), &preset, 1.0, 30.0, 2);
    assert_eq!(reports.len(), 2);
    for report in &reports {
        assert_eq!(report.platform, "exynos9820");
        assert!(report.energy_total_j() > 0.0);
        assert_eq!(report.pickup_count(), 3);
    }
    let doc = days_to_json(&reports, "test");
    assert_eq!(
        doc.get("platform").and_then(Json::as_str),
        Some("exynos9820")
    );
}
