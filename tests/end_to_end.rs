//! End-to-end integration tests: the paper's headline claims, asserted
//! on short (CI-friendly) versions of the §V protocol.

use next_mpsoc::governors::{IntQosPm, Schedutil};
use next_mpsoc::next_core::NextConfig;
use next_mpsoc::simkit::experiment::{evaluate_governor, train_next_for_app};
use next_mpsoc::workload::SessionPlan;

const SEED: u64 = 1000;

#[test]
fn trained_next_saves_power_on_facebook() {
    let plan = SessionPlan::single("facebook", 120.0);
    let sched = evaluate_governor(&mut Schedutil::new(), &plan, SEED);
    let out = train_next_for_app("facebook", NextConfig::paper(), 7, 400.0);
    let mut agent = out.agent;
    let next = evaluate_governor(&mut agent, &plan, SEED);
    let saving = next.summary.power_saving_vs(&sched.summary);
    assert!(saving > 5.0, "expected a real saving, got {saving:.1} %");
    assert!(
        next.summary.avg_fps > sched.summary.avg_fps * 0.8,
        "QoS sacrificed: {:.1} vs {:.1} fps",
        next.summary.avg_fps,
        sched.summary.avg_fps
    );
}

#[test]
fn trained_next_cools_the_big_cluster_on_spotify() {
    let plan = SessionPlan::single("spotify", 120.0);
    let sched = evaluate_governor(&mut Schedutil::new(), &plan, SEED);
    let out = train_next_for_app("spotify", NextConfig::paper(), 7, 400.0);
    let mut agent = out.agent;
    let next = evaluate_governor(&mut agent, &plan, SEED);
    assert!(
        next.summary.peak_temp_hot_c <= sched.summary.peak_temp_hot_c + 0.1,
        "next must not run hotter: {:.1} vs {:.1} C",
        next.summary.peak_temp_hot_c,
        sched.summary.peak_temp_hot_c
    );
    assert!(next.summary.avg_power_w < sched.summary.avg_power_w);
}

#[test]
fn intqos_sits_between_schedutil_and_top_pinning_on_a_game() {
    // Int. QoS PM right-sizes the CPU/GPU pair: cheaper than schedutil's
    // boosting on a sustained game, while keeping a playable frame rate.
    let plan = SessionPlan::single("lineage", 180.0);
    let sched = evaluate_governor(&mut Schedutil::new(), &plan, SEED);
    let qos = evaluate_governor(&mut IntQosPm::new(), &plan, SEED);
    assert!(
        qos.summary.avg_power_w < sched.summary.avg_power_w,
        "Int. QoS PM should undercut schedutil: {:.2} vs {:.2} W",
        qos.summary.avg_power_w,
        sched.summary.avg_power_w
    );
    assert!(
        qos.summary.avg_fps > 25.0,
        "unplayable: {:.1} fps",
        qos.summary.avg_fps
    );
}

#[test]
fn fig1_session_shows_intra_app_fps_variation() {
    // The paper's Fig. 1 premise: FPS varies widely within one session
    // while frequencies stay high during Spotify playback.
    let plan = SessionPlan::paper_fig1();
    let result = evaluate_governor(&mut Schedutil::new(), &plan, SEED);
    let resampled = result.outcome.trace.resampled(3.0);
    let fps_min = resampled
        .iter()
        .map(|s| s.fps)
        .fold(f64::INFINITY, f64::min);
    let fps_max = resampled.iter().map(|s| s.fps).fold(0.0f64, f64::max);
    assert!(
        fps_max > 50.0,
        "some 60 fps bursts expected, max {fps_max:.1}"
    );
    assert!(
        fps_min < 10.0,
        "near-zero fps phases expected, min {fps_min:.1}"
    );
    // During the zero-fps tail (Spotify playback) the big cluster must
    // still be clocked well above its floor — the inefficiency Next
    // exploits.
    let quiet: Vec<_> = resampled.iter().filter(|s| s.fps < 5.0).collect();
    assert!(!quiet.is_empty());
    let avg_big_khz: f64 =
        quiet.iter().map(|s| f64::from(s.freq_khz[0])).sum::<f64>() / quiet.len() as f64;
    assert!(
        avg_big_khz > 800_000.0,
        "big cluster should stay clocked during frameless phases: {avg_big_khz:.0} kHz"
    );
}

#[test]
fn evaluation_protocol_is_deterministic() {
    let plan = SessionPlan::single("pubg", 60.0);
    let a = evaluate_governor(&mut Schedutil::new(), &plan, 77);
    let b = evaluate_governor(&mut Schedutil::new(), &plan, 77);
    assert_eq!(a.summary, b.summary);
    let c = evaluate_governor(&mut IntQosPm::new(), &plan, 77);
    let d = evaluate_governor(&mut IntQosPm::new(), &plan, 77);
    assert_eq!(c.summary, d.summary);
}

#[test]
fn next_training_is_deterministic_per_seed() {
    let run = || {
        let out = train_next_for_app("home", NextConfig::paper(), 3, 120.0);
        out.agent.table().encode()
    };
    assert_eq!(run(), run());
}
