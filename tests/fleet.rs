//! Federated-fleet integration: several simulated devices train on the
//! same app with different users, the cloud merges their tables, and
//! the merged table drives a working greedy agent (§IV-C end to end).

use next_mpsoc::next_core::{NextAgent, NextConfig};
use next_mpsoc::qlearn::federated::{merge, CloudModel};
use next_mpsoc::simkit::experiment::{evaluate_governor, train_next_for_app};
use next_mpsoc::workload::SessionPlan;

#[test]
fn fleet_merge_produces_a_working_agent() {
    let mut tables = Vec::new();
    for device in 0..3u64 {
        let out = train_next_for_app(
            "facebook",
            NextConfig::paper().with_seed(200 + device),
            200 + device,
            150.0,
        );
        tables.push(out.agent.into_table());
    }
    let refs: Vec<&_> = tables.iter().collect();
    let merged = merge(&refs);

    // The union covers at least as many states as any single device.
    // Integration tests of the facade crate only see the workspace
    // members through `next_mpsoc::*`, so path the methods accordingly.
    let max_single = tables
        .iter()
        .map(next_mpsoc::qlearn::DenseQTable::len)
        .max()
        .unwrap();
    assert!(merged.len() >= max_single, "merge must not lose states");
    let visit_sum: u64 = tables
        .iter()
        .map(next_mpsoc::qlearn::DenseQTable::total_visits)
        .sum();
    assert_eq!(merged.total_visits(), visit_sum);

    // The merged table drives greedy inference without issue.
    let mut agent = NextAgent::with_table(NextConfig::paper(), merged, false);
    let plan = SessionPlan::single("facebook", 60.0);
    let result = evaluate_governor(&mut agent, &plan, 4321);
    assert!(result.summary.avg_power_w > 0.5);
    assert!(
        result.summary.avg_fps > 20.0,
        "fleet agent unusable: {:.1} fps",
        result.summary.avg_fps
    );
}

#[test]
fn cloud_model_matches_fig6_shape() {
    let cloud = CloudModel::xeon_e7_8860v3();
    // Paper: 207 s online at 30 bins maps to ~27 s in the cloud
    // (roughly an order of magnitude, plus the 4 s round trip).
    let t = cloud.cloud_time_s(207.0);
    assert!(
        t > 4.0 && t < 207.0 / 4.0,
        "cloud time {t} out of the paper's band"
    );
    // Monotone in online time; overhead-dominated at zero.
    assert!(cloud.cloud_time_s(60.0) < cloud.cloud_time_s(300.0));
    assert_eq!(cloud.cloud_time_s(0.0), 4.0);
}

#[test]
fn merging_identical_tables_is_idempotent_on_values() {
    let out = train_next_for_app("home", NextConfig::paper(), 9, 120.0);
    let table = out.agent.into_table();
    let merged = merge(&[&table, &table]);
    for state in table.state_keys() {
        for action in 0..9 {
            let a = table.q(state, action);
            let b = merged.q(state, action);
            assert!(
                (a - b).abs() < 1e-12,
                "value changed by self-merge: {a} vs {b}"
            );
        }
    }
}
