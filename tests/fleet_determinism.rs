//! Fleet determinism: the schema-v2 `fleet.json` document must be
//! **byte-identical** for a fixed seed whatever the worker count — the
//! same 1-vs-N guarantee the sweep engine gives, extended through
//! local training, the streaming cloud merge, the held-out evaluation
//! and the JSON rendering.

use next_mpsoc::bench::fleet::{fleet_to_json, parse_document};
use next_mpsoc::bench::json::Json;
use next_mpsoc::simkit::fleet::{run_fleet, FleetConfig};

fn tiny_config() -> FleetConfig {
    FleetConfig {
        round_budget_s: 40.0,
        eval_seeds: vec![9_001],
        eval_duration_s: 20.0,
        ..FleetConfig::new("facebook", 3, 2, 7)
    }
}

#[test]
fn fleet_json_is_byte_identical_across_worker_counts() {
    let config = tiny_config();
    let one = fleet_to_json(&run_fleet(&config, 1), "test").render();
    let many = fleet_to_json(&run_fleet(&config, 4), "test").render();
    assert_eq!(one, many, "fleet.json must not depend on parallelism");

    // And it is a valid schema-v2 document with the promised sections.
    let doc = parse_document(&one).expect("fleet.json parses");
    assert_eq!(doc.schema, 2);
    let fleet = doc.fleet.expect("fleet section");
    let rounds = fleet
        .get("rounds_log")
        .and_then(Json::as_array)
        .expect("rounds_log");
    assert_eq!(rounds.len(), 2);
    for round in rounds {
        assert!(round.get("eval").and_then(|e| e.get("ppdw")).is_some());
        assert!(round.get("round_time_s").is_some());
        assert!(round.get("comm_s").is_some());
    }
}

#[test]
fn fleet_seed_changes_the_document() {
    let a = fleet_to_json(&run_fleet(&tiny_config(), 2), "test").render();
    let mut other = tiny_config();
    other.seed = 8;
    let b = fleet_to_json(&run_fleet(&other, 2), "test").render();
    assert_ne!(a, b, "different fleets must differ");
}

#[test]
fn fleet_quality_improves_on_schedutil_energy_or_matches_fps() {
    // Sanity of the held-out metrics: the merged table drives a real
    // agent — power and FPS land in physical ranges.
    let report = run_fleet(&tiny_config(), 2);
    let last = report.rounds.last().unwrap();
    assert!(last.eval.avg_fps > 10.0 && last.eval.avg_fps <= 60.5);
    assert!(last.eval.avg_power_w > 0.5 && last.eval.avg_power_w < 16.0);
    assert!(last.eval.ppdw > 0.0);
}
