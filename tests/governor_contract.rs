//! Contract tests every governor must satisfy: frequencies always come
//! from the OPP tables, policy caps stay ordered, and the platform
//! never reads a nonsensical state, no matter which governor drives it.

use next_mpsoc::governors::{Governor, IntQosPm, Ondemand, Performance, Powersave, Schedutil};
use next_mpsoc::mpsoc::{Soc, SocConfig};
use next_mpsoc::next_core::{NextAgent, NextConfig};
use next_mpsoc::simkit::Engine;
use next_mpsoc::workload::{SessionPlan, SessionSim};

fn governors() -> Vec<Box<dyn Governor>> {
    vec![
        Box::new(Schedutil::new()),
        Box::new(IntQosPm::new()),
        Box::new(Performance::new()),
        Box::new(Powersave::new()),
        Box::new(Ondemand::new()),
        Box::new(NextAgent::new(NextConfig::paper())),
    ]
}

#[test]
fn invariants_hold_under_every_governor() {
    for mut gov in governors() {
        let engine = Engine::new();
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut session = SessionSim::new(SessionPlan::paper_fig1(), 55);
        let duration = 60.0;
        let ticks = (duration / engine.tick_s()) as usize;
        let control_every = (gov.period_s() / engine.tick_s()).round().max(1.0) as usize;
        for t in 0..ticks {
            let demand = session.advance(engine.tick_s());
            let out = soc.tick(engine.tick_s(), &demand);
            let state = soc.state();
            gov.observe(&state);
            if (t + 1) % control_every == 0 {
                gov.control(&state, soc.dvfs_mut());
            }

            // Frequency comes from the table and respects the caps.
            for id in soc.dvfs().ids().collect::<Vec<_>>() {
                let dom = soc.dvfs().domain(id);
                let cur = dom.current().freq_khz;
                assert!(
                    dom.table().level_of(cur).is_ok(),
                    "{}: {id} frequency {cur} not an OPP",
                    gov.name()
                );
                assert!(dom.min_cap().freq_khz <= dom.max_cap().freq_khz);
                assert!(cur >= dom.min_cap().freq_khz && cur <= dom.max_cap().freq_khz);
            }
            // Physical sanity.
            assert!(
                out.power_w.is_finite() && out.power_w >= 0.0,
                "{}",
                gov.name()
            );
            assert!(
                state.temp_hot_c >= 20.9 && state.temp_hot_c < 150.0,
                "{}",
                gov.name()
            );
            assert!(state.fps >= 0.0 && state.fps <= 61.0, "{}", gov.name());
            for &u in state.util.iter() {
                assert!((0.0..=1.0).contains(&u), "{}", gov.name());
            }
        }
    }
}

#[test]
fn governors_report_distinct_names() {
    let names: Vec<String> = governors().iter().map(|g| g.name().to_owned()).collect();
    let mut unique = names.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(
        unique.len(),
        names.len(),
        "duplicate governor names: {names:?}"
    );
}

#[test]
fn reset_lets_a_governor_be_reused_across_sessions() {
    let engine = Engine::new();
    for mut gov in governors() {
        let mut soc = Soc::new(SocConfig::exynos9810());
        let mut s1 = SessionSim::new(SessionPlan::single("facebook", 20.0), 1);
        engine.run(&mut soc, gov.as_mut(), &mut s1, 20.0);
        gov.reset();
        soc.reset();
        let mut s2 = SessionSim::new(SessionPlan::single("spotify", 20.0), 2);
        let out = engine.run(&mut soc, gov.as_mut(), &mut s2, 20.0);
        assert!(out.trace.summary().avg_power_w > 0.0, "{}", gov.name());
    }
}
