//! Q-table persistence across "reboots": train, store on disk, reload
//! into a fresh agent, and verify behaviour is preserved (§IV-B's
//! train-once / reuse-forever lifecycle).

use std::fs;

use next_mpsoc::next_core::{NextAgent, NextConfig, QTableStore};
use next_mpsoc::simkit::experiment::{evaluate_governor, train_next_for_app};
use next_mpsoc::workload::SessionPlan;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("next-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn trained_table_survives_reboot_and_reproduces_behaviour() {
    let dir = temp_dir("reboot");
    let out = train_next_for_app("facebook", NextConfig::paper(), 7, 300.0);
    let table = out.agent.into_table();

    {
        let mut store = QTableStore::at_dir(&dir).expect("create store dir");
        store.save("facebook", &table).expect("save table");
    }

    // "Reboot": a brand-new store over the same directory.
    let mut store = QTableStore::at_dir(&dir).expect("reopen store dir");
    assert!(store.contains("facebook"));
    let reloaded = store.load("facebook").expect("table present");
    assert_eq!(reloaded, table, "codec must round-trip the learned table");

    // Same table + same seed -> identical greedy evaluation.
    let plan = SessionPlan::single("facebook", 60.0);
    let mut agent_a = NextAgent::with_table(NextConfig::paper(), table, false);
    let mut agent_b = NextAgent::with_table(NextConfig::paper(), reloaded, false);
    let a = evaluate_governor(&mut agent_a, &plan, 123);
    let b = evaluate_governor(&mut agent_b, &plan, 123);
    assert_eq!(a.summary, b.summary);

    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn store_keeps_apps_separate() {
    let dir = temp_dir("multi");
    let mut store = QTableStore::at_dir(&dir).expect("create store dir");

    let fb = train_next_for_app("facebook", NextConfig::paper(), 7, 120.0);
    let sp = train_next_for_app("spotify", NextConfig::paper(), 7, 120.0);
    store.save("facebook", fb.agent.table()).expect("save");
    store.save("spotify", sp.agent.table()).expect("save");

    let fb_loaded = store.load("facebook").expect("facebook stored");
    let sp_loaded = store.load("spotify").expect("spotify stored");
    assert_ne!(fb_loaded, sp_loaded, "per-app tables must differ");
    assert_eq!(
        store.cached_apps(),
        vec!["facebook".to_owned(), "spotify".to_owned()]
    );

    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn continued_training_resumes_from_stored_table() {
    let out = train_next_for_app("home", NextConfig::paper(), 7, 120.0);
    let states_before = out.agent.table().len();
    let visits_before = out.agent.table().total_visits();

    // Resume training from the stored table.
    let mut agent = NextAgent::with_table(NextConfig::paper(), out.agent.into_table(), true);
    assert!(agent.is_training());
    let mut soc = next_mpsoc::mpsoc::Soc::new(next_mpsoc::mpsoc::SocConfig::exynos9810());
    let engine = next_mpsoc::simkit::Engine::new();
    let mut session = next_mpsoc::workload::SessionSim::new(SessionPlan::single("home", 60.0), 11);
    engine.run(&mut soc, &mut agent, &mut session, 60.0);

    assert!(
        agent.table().total_visits() > visits_before,
        "resumed training must learn"
    );
    assert!(agent.table().len() >= states_before);
}
