//! Acceptance tests for the platform-generic DVFS refactor.
//!
//! 1. **No behavioural drift on the paper's platform**: the sweep
//!    report and the fleet JSON artifact produced on
//!    `--platform exynos9810` must be byte-identical to the fixtures
//!    captured from the pre-refactor tree
//!    (`tests/fixtures/sweep_exynos9810.txt`,
//!    `tests/fixtures/fleet_exynos9810.json`).
//! 2. **`m` really varies**: the `exynos9820` preset runs end to end
//!    with `Action::count == 12` and a dense Q-table sized to the
//!    4-domain state space.

use next_mpsoc::bench::fleet as bench_fleet;
use next_mpsoc::next_core::{Action, NextAgent, StateEncoder};
use next_mpsoc::simkit::experiment::evaluate_governor_on;
use next_mpsoc::simkit::fleet::{run_fleet, FleetConfig};
use next_mpsoc::simkit::{sweep, PlatformPreset, StandardEvaluator, TrainSpec, Trainer};
use next_mpsoc::workload::SessionPlan;

/// The exact grid the sweep fixture was captured with:
/// `next-sim sweep --apps facebook,spotify --governors schedutil,next
///  --seeds 1000 --duration 30 --train-budget 60`.
#[test]
fn sweep_on_exynos9810_is_byte_identical_to_the_seed_fixture() {
    let fixture = include_str!("fixtures/sweep_exynos9810.txt");
    let apps = vec!["facebook".to_owned(), "spotify".to_owned()];
    let governors = vec!["schedutil".to_owned(), "next".to_owned()];
    let cells = sweep::grid(&apps, &governors, &[1000], Some(30.0));
    let evaluator = StandardEvaluator::prepare_on(&cells, 60.0, 4, PlatformPreset::exynos9810());
    let rows = sweep::run_cells(&cells, 4, |cell| evaluator.eval(cell));
    assert_eq!(
        sweep::report(&rows),
        fixture,
        "exynos9810 sweep output drifted from the pre-refactor fixture"
    );
}

/// The exact fleet the JSON fixture was captured with:
/// `next-sim fleet --devices 3 --rounds 2 --quick --seed 7`.
#[test]
fn fleet_on_exynos9810_is_byte_identical_to_the_seed_fixture() {
    let fixture = include_str!("fixtures/fleet_exynos9810.json");
    let config = FleetConfig::quick("facebook", 3, 2, 7);
    assert!(config.is_default_platform());
    let report = run_fleet(&config, 2);
    let rendered = format!(
        "{}\n",
        bench_fleet::fleet_to_json(&report, "quick").render()
    );
    assert_eq!(
        rendered, fixture,
        "exynos9810 fleet.json drifted from the pre-refactor fixture"
    );
}

#[test]
fn exynos9820_runs_end_to_end_with_twelve_actions() {
    let preset = PlatformPreset::by_name("exynos9820").expect("shipped preset");
    let platform = &preset.soc.platform;
    assert_eq!(platform.n_domains(), 4);
    assert_eq!(Action::count(platform.n_domains()), 12);
    assert_eq!(platform.action_count(), 12);

    // The agent's dense Q-table is shaped by the 4-domain platform:
    // 12 actions over the 16·12·9·9-level frequency digits times the
    // quantised signals.
    let encoder = StateEncoder::for_platform(platform, preset.next.fps_bins).unwrap();
    let expect_states = 16u64 * 12 * 9 * 9 * 30 * 30 * 4 * 6 * 6;
    assert_eq!(encoder.state_space_size(), expect_states);
    let agent = NextAgent::new(preset.next.clone());
    assert_eq!(agent.table().n_actions(), 12);

    // Train briefly on the 9820 device and evaluate the result — the
    // full loop (platform → soc → governor → encoder → Q-table) works.
    let spec =
        TrainSpec::new("facebook", preset.next.clone(), 5, 60.0).with_soc(preset.soc.clone());
    let out = Trainer::new().train(spec);
    assert!(!out.agent.table().is_empty());
    assert_eq!(out.agent.table().n_actions(), 12);

    let mut agent = out.agent;
    let plan = SessionPlan::single("facebook", 20.0);
    let result = evaluate_governor_on(&mut agent, &plan, 9_001, &preset.soc);
    assert!(result.summary.avg_power_w > 0.5);
    assert!(result.summary.avg_fps > 0.0);
    assert!(result.summary.peak_temp_hot_c > 21.0);
}

#[test]
fn mixed_platform_fleet_artifact_is_schema_v3_and_parses() {
    let config = FleetConfig {
        round_budget_s: 30.0,
        eval_seeds: vec![9_001],
        eval_duration_s: 15.0,
        ..FleetConfig::new("facebook", 2, 1, 3)
    }
    .with_platforms(vec!["exynos9810".to_owned(), "exynos9820".to_owned()]);
    let report = run_fleet(&config, 2);
    let text = bench_fleet::fleet_to_json(&report, "test").render();
    let parsed = bench_fleet::parse_document(&text).expect("v3 artifact parses");
    assert_eq!(parsed.schema, 3);
    let fleet = parsed.fleet.expect("fleet section");
    let platforms = fleet
        .get("platforms")
        .and_then(next_mpsoc::bench::json::Json::as_array)
        .expect("platform list present in mixed fleets");
    assert_eq!(platforms.len(), 2);
    let tables = fleet
        .get("final")
        .and_then(|f| f.get("tables"))
        .and_then(next_mpsoc::bench::json::Json::as_array)
        .expect("per-platform table breakdown");
    assert_eq!(tables.len(), 2);
}
