//! Determinism of the parallel sweep engine: the same grid must produce
//! identical `Summary` rows — and byte-identical reports — whatever the
//! worker-thread count, because thread scheduling may change only when a
//! cell runs, never its result or its place in the output.

use next_mpsoc::simkit::sweep::{self, StandardEvaluator};

/// A small but representative grid: two app classes, three governor
/// kinds (including the trained `next` agent), two seeds.
fn test_cells() -> Vec<sweep::SweepCell> {
    sweep::grid(
        &["facebook".into(), "pubg".into()],
        &["schedutil".into(), "powersave".into(), "next".into()],
        &[1000, 1001],
        Some(15.0),
    )
}

#[test]
fn one_worker_and_many_workers_agree_row_for_row() {
    let cells = test_cells();

    let eval_serial = StandardEvaluator::prepare(&cells, 45.0, 1);
    let serial = sweep::run_cells(&cells, 1, |c| eval_serial.eval(c));

    let eval_parallel = StandardEvaluator::prepare(&cells, 45.0, 8);
    let parallel = sweep::run_cells(&cells, 8, |c| eval_parallel.eval(c));

    assert_eq!(serial.len(), cells.len());
    assert_eq!(serial, parallel, "rows must be identical under parallelism");
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let cells = test_cells();
    let reports: Vec<String> = [1usize, 2, 5]
        .iter()
        .map(|&workers| {
            let eval = StandardEvaluator::prepare(&cells, 45.0, workers);
            let rows = sweep::run_cells(&cells, workers, |c| eval.eval(c));
            sweep::report(&rows)
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[1], reports[2]);
    assert!(
        reports[0].contains("facebook"),
        "report lists the swept apps"
    );
    assert!(
        reports[0].contains("next"),
        "report lists the swept governors"
    );
}

#[test]
fn rows_come_back_in_cell_order() {
    let cells = test_cells();
    let eval = StandardEvaluator::prepare(&cells, 45.0, 4);
    let rows = sweep::run_cells(&cells, 4, |c| eval.eval(c));
    for (cell, row) in cells.iter().zip(&rows) {
        assert_eq!(cell, &row.cell);
    }
}
