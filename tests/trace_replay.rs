//! Record/replay byte-identity and bisect acceptance tests.
//!
//! A recorded day trace carries its own regeneration recipe
//! ([`TraceMeta`]): plan from `(persona, config, seed)`, Q-tables from
//! `(governor, budget, preset)`, ticks from the deterministic engine.
//! `replay_day` must therefore rebuild the **exact bytes** of the
//! original recording — on both platform presets, for a learning
//! governor (`next`) and a baseline — and `bisect` must pinpoint an
//! injected divergence at the precise tick and field.

use next_mpsoc::simkit::day::{replay_day, run_days_traced};
use next_mpsoc::simkit::trace::{bisect, TickTrace};
use next_mpsoc::simkit::PlatformPreset;
use next_mpsoc::workload::{DayPlan, DayPlanConfig, Persona};

/// A tiny but real day: two pickups over five simulated minutes.
fn tiny_cfg() -> DayPlanConfig {
    DayPlanConfig {
        pickups: 2,
        day_length_s: 300.0,
        session_scale: 0.1,
        min_session_s: 15.0,
    }
}

/// Records one (persona, seed, governor, platform) day cell.
fn record(governor: &str, platform: &str, seed: u64) -> TickTrace {
    let preset = PlatformPreset::by_name(platform).expect("shipped preset");
    let plan = DayPlan::generate(&Persona::socialite(), &tiny_cfg(), seed);
    let cells = run_days_traced(
        &[plan],
        &[governor.to_owned()],
        &preset,
        1.0,
        30.0, // tiny training budget keeps the test fast
        2,
    );
    assert_eq!(cells.len(), 1);
    cells.into_iter().next().expect("one cell").1
}

/// Replays `trace` from its metadata and asserts byte-identity.
fn assert_replays(trace: &TickTrace) {
    let bytes = trace.encode();
    let (_report, replayed) = replay_day(&trace.meta, 2).expect("metadata must replay");
    let replayed_bytes = replayed.encode();
    if replayed_bytes != bytes {
        let report = bisect(trace, &replayed);
        panic!("replay diverged from recording:\n{}", report.render());
    }
}

#[test]
fn next_replays_byte_identical_on_exynos9810() {
    let trace = record("next", "exynos9810", 7);
    assert!(!trace.records.is_empty(), "day must record ticks");
    assert_eq!(trace.meta.n_domains, 3);
    assert!(
        trace.records.iter().any(|r| r.action.is_some()),
        "the next agent must record decisions"
    );
    assert_replays(&trace);
}

#[test]
fn baseline_replays_byte_identical_on_exynos9820() {
    let trace = record("schedutil", "exynos9820", 11);
    assert_eq!(trace.meta.n_domains, 4);
    assert!(
        trace.records.iter().all(|r| r.action.is_none()),
        "baselines expose no decisions"
    );
    assert_replays(&trace);
}

#[test]
fn replay_survives_codec_roundtrip() {
    // The CLI path: the replayed metadata comes from a decoded file,
    // not the in-memory recorder.
    let trace = record("schedutil", "exynos9810", 3);
    let decoded = TickTrace::decode(&trace.encode()).expect("own encoding decodes");
    assert_replays(&decoded);
}

#[test]
fn bisect_pinpoints_injected_divergence() {
    let trace = record("schedutil", "exynos9810", 5);
    let mut perturbed = trace.clone();
    let tick = perturbed.records.len() / 2;
    perturbed.records[tick].power_w += 0.125;
    perturbed.records[tick].freq_level[0] ^= 1;
    let report = bisect(&trace, &perturbed);
    assert!(!report.is_identical());
    let div = report.divergence.as_ref().expect("must diverge");
    assert_eq!(div.tick, tick, "first divergent tick");
    let fields: Vec<&str> = div.fields.iter().map(|d| d.field).collect();
    assert!(fields.contains(&"power_w"), "fields: {fields:?}");
    assert!(fields.contains(&"freq_level"), "fields: {fields:?}");
    // Every tick before the injection is untouched and must not be
    // reported: the rendered diff names exactly one tick.
    assert!(report.render().contains(&format!("tick {tick}")));
}

#[test]
fn replay_rejects_foreign_metadata() {
    let trace = record("schedutil", "exynos9810", 2);
    let mut meta = trace.meta.clone();
    meta.platform = "imaginary-soc".to_owned();
    assert!(replay_day(&meta, 2).is_err(), "unknown platform must fail");
    let mut meta = trace.meta.clone();
    meta.n_domains = 4; // exynos9810 has 3
    assert!(replay_day(&meta, 2).is_err(), "domain mismatch must fail");
    let mut meta = trace.meta.clone();
    meta.tick_s = 0.5;
    assert!(replay_day(&meta, 2).is_err(), "foreign base tick must fail");
}
