//! Property-based round-trip of the binary trace codec.
//!
//! For arbitrary metadata and record streams, `encode` → `decode` must
//! be the identity, and the encoding must be a fixpoint (decoding and
//! re-encoding reproduces the exact bytes — the property `next-sim
//! replay` builds its byte-identity check on). A corruption property
//! pins the other direction: flipping any single byte of the header
//! region either changes the decoded value or fails to parse, never
//! silently round-trips to the original.

use proptest::prelude::*;

use next_mpsoc::simkit::trace::{SegmentKind, TickRecord, TickTrace, TraceMeta};
use next_mpsoc::workload::DayPlanConfig;

/// One generated record: (time, kind, pickup, action, reward, fps,
/// power, battery, temp_device, temp_battery). Domain arrays are
/// derived from the scalars so the tuple stays within proptest's
/// 10-element limit.
type RecTuple = (f64, u8, u16, u16, f32, f32, f32, f32, f32, f32);

fn record_from(t: &RecTuple, n_domains: usize) -> TickRecord {
    let &(time_s, kind, pickup, action, reward, fps, power_w, battery_pct, temp_d, temp_b) = t;
    TickRecord {
        time_s,
        kind: if kind == 0 {
            SegmentKind::Gap
        } else {
            SegmentKind::Session
        },
        pickup,
        // Spread actions over Some/None, including the largest encodable
        // value (u16::MAX - 1; MAX itself is the None sentinel).
        action: (action % 5 != 0).then_some(action.saturating_sub(1).min(u16::MAX - 1)),
        reward,
        fps,
        power_w,
        battery_pct,
        temp_device_c: temp_d,
        temp_battery_c: temp_b,
        freq_level: (0..n_domains)
            .map(|d| (pickup as usize + d) as u8)
            .collect(),
        temp_domain_c: (0..n_domains).map(|d| temp_d + d as f32).collect(),
    }
}

fn meta_from(n_domains: usize, seed: u64, pickups: u32, gap_tick_s: f64) -> TraceMeta {
    TraceMeta {
        platform: format!("soc-{n_domains}"),
        governor: "next".to_owned(),
        persona: "gamer".to_owned(),
        seed,
        plan: DayPlanConfig {
            pickups: pickups.max(1),
            day_length_s: 7200.0,
            session_scale: 0.25,
            min_session_s: 10.0,
        },
        gap_tick_s,
        train_budget_s: 120.0,
        battery: next_mpsoc::simkit::Battery::note9(),
        tick_s: 0.025,
        n_domains: n_domains as u8,
    }
}

proptest! {
    /// decode(encode(trace)) == trace, and encode is a fixpoint.
    #[test]
    fn codec_roundtrips_arbitrary_traces(
        n_domains in 1usize..9,
        seed in 0u64..1_000_000,
        pickups in 1u32..200,
        gap_tick_s in 0.1f64..5.0,
        recs in proptest::collection::vec(
            (
                0f64..57_600.0,
                0u8..2,
                0u16..64,
                0u16..40,
                -1.0f32..1.0,
                0f32..120.0,
                0f32..12.0,
                0f32..100.0,
                15f32..95.0,
                15f32..60.0,
            ),
            0..40,
        ),
    ) {
        let trace = TickTrace {
            meta: meta_from(n_domains, seed, pickups, gap_tick_s),
            records: recs.iter().map(|t| record_from(t, n_domains)).collect(),
        };
        let bytes = trace.encode();
        let back = TickTrace::decode(&bytes).expect("valid encoding must decode");
        prop_assert_eq!(&back, &trace, "decode must invert encode");
        prop_assert_eq!(back.encode(), bytes, "encode must be a fixpoint");
    }

    /// Truncating an encoded trace anywhere strictly inside it must be
    /// rejected — the codec never fabricates records from a short file.
    #[test]
    fn truncation_never_parses(
        n_domains in 1usize..9,
        cut_frac in 0.01f64..0.99,
        recs in proptest::collection::vec(
            (
                0f64..1000.0,
                0u8..2,
                0u16..8,
                0u16..40,
                -1.0f32..1.0,
                0f32..120.0,
                0f32..12.0,
                0f32..100.0,
                15f32..95.0,
                15f32..60.0,
            ),
            1..10,
        ),
    ) {
        let trace = TickTrace {
            meta: meta_from(n_domains, 7, 3, 1.0),
            records: recs.iter().map(|t| record_from(t, n_domains)).collect(),
        };
        let bytes = trace.encode();
        let cut = ((bytes.len() as f64 * cut_frac) as usize).clamp(1, bytes.len() - 1);
        prop_assert!(
            TickTrace::decode(&bytes[..cut]).is_err(),
            "truncation at byte {cut} of {} must not parse",
            bytes.len()
        );
    }
}
