//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the small API the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] —
//! backed by a plain wall-clock timing loop (short warm-up, then a
//! fixed measurement budget, reporting the mean time per iteration).
//! There is no statistical analysis, plotting or HTML output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working; upstream
/// deprecates it in favour of `std::hint::black_box`, which this is.
pub use std::hint::black_box;

/// Benchmark driver: runs named benchmark functions and prints their
/// mean iteration time.
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(750),
        }
    }
}

impl Criterion {
    /// Runs `f` as the benchmark named `id` and prints the result.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_secs_f64() * 1e9 / b.iters as f64
        };
        println!("{id:40} {per_iter_ns:12.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Handed to the benchmark closure; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`: a short warm-up, then as many
    /// iterations as fit in the measurement budget.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let warm_until = Instant::now() + self.warmup;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure {
            // Batch iterations to amortise the clock reads.
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
