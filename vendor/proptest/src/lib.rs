//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the workspace's property
//! tests use:
//!
//! * [`strategy::Strategy`] implemented for numeric ranges, tuples of
//!   strategies and [`collection::vec`], plus
//!   [`strategy::Strategy::prop_map`],
//! * the [`proptest!`] macro wrapping `fn name(arg in strategy, ...)`
//!   test cases,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and
//!   `prop_assume!`.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with the ordinary assertion message. Case generation is fully
//! deterministic per test (seeded from the test name), so failures
//! reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Number of generated cases per property.
pub const NUM_CASES: u32 = 64;

pub mod test_runner {
    //! Deterministic case-generation RNG.

    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Creates the RNG driving one property's case generation, seeded
    /// from the test name so every test has its own reproducible stream.
    #[must_use]
    pub fn rng_for_test(name: &str) -> TestRng {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use std::ops::Range;

    use rand::Rng as _;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use rand::Rng as _;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import for property tests.

    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`NUM_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::test_runner::rng_for_test(stringify!($name));
                for __proptest_case in 0..$crate::NUM_CASES {
                    let _ = __proptest_case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    // Run the body in a closure so `prop_assume!` can
                    // abandon just this case with an early return.
                    let __proptest_run = || -> ::core::result::Result<(), ()> {
                        $body
                        Ok(())
                    };
                    let _ = __proptest_run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Abandons the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::rng_for_test("ranges_and_maps");
        let strat = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::rng_for_test("vec_sizes");
        let strat = crate::collection::vec(0.0f64..1.0, 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        /// The macro itself: generated tuples land in their ranges and
        /// `prop_assume!` abandons cases without failing them.
        #[test]
        fn macro_generates_and_assumes(
            (a, b) in (0u32..50, 0u32..50),
            x in -1.0..1.0f64,
        ) {
            prop_assume!(a != b);
            prop_assert!(a < 50 && b < 50);
            prop_assert_ne!(a, b);
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert_eq!(a.min(b), b.min(a));
        }
    }
}
