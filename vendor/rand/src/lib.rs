//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing the subset of the 0.8 API this workspace uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`].
//!
//! The container this workspace builds in has no access to crates.io, so
//! the external `rand` dependency is replaced by this vendored path
//! crate. The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, fully deterministic PRNG. The statistical behaviour is
//! not bit-compatible with upstream `rand`; all simulation results in
//! this repository are defined with respect to *this* generator, which
//! is stable across platforms and releases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator with typed sampling helpers, mirroring the
/// `rand` 0.8 `Rng` extension trait.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to sample one value of `T` from itself.
pub trait SampleRange<T> {
    /// Draws a single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit resolution.
fn unit_f64(bits: u64) -> f64 {
    // 2^-53 scaling of the top 53 bits.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift keeps the draw unbiased enough for
                // simulation purposes and stays branch-free.
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let i = rng.gen_range(0usize..9);
            assert!(i < 9);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!StdRng::seed_from_u64(0).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(0).gen_bool(1.0));
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&u));
        }
    }
}
